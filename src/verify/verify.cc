#include "verify/verify.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "bam/word.hh"
#include "support/text.hh"

namespace symbol::verify
{

using bam::Tag;
using bam::Word;
using intcode::IInstr;
using intcode::IOp;
using intcode::OpClass;
using machine::MachineConfig;

namespace
{

using R = bam::Regs;
using L = bam::Layout;

// === The machine model, re-derived ======================================
//
// These tables deliberately duplicate the scheduler's understanding of
// the datapath (operation latencies, issue slots, speculation safety,
// memory areas) instead of importing it from src/sched: a bug there
// must not be able to hide from the checks here. Everything below is
// derived from machine::MachineConfig and the §3/§4 machine
// description only.

int
opLatency(const IInstr &i, const MachineConfig &mc)
{
    switch (intcode::opClass(i.op)) {
      case OpClass::Memory:
        return i.op == IOp::Ld ? mc.memLatency : 1;
      case OpClass::Alu:
        return mc.aluLatency;
      case OpClass::Move:
        return mc.moveLatency;
      default:
        return 1;
    }
}

/** May the op execute on a path where it originally would not have?
 *  Stores and output are observable; Div/Mod may fault. */
bool
harmlessIfSpeculated(const IInstr &i)
{
    if (intcode::isControl(i.op))
        return false;
    switch (i.op) {
      case IOp::St:
      case IOp::Out:
      case IOp::Div:
      case IOp::Mod:
        return false;
      default:
        return true;
    }
}

enum class SlotClass : std::uint8_t { Mem, Alu, Move, Branch, None };

SlotClass
slotClassOf(IOp op)
{
    switch (intcode::opClass(op)) {
      case OpClass::Memory: return SlotClass::Mem;
      case OpClass::Alu: return SlotClass::Alu;
      case OpClass::Move: return SlotClass::Move;
      case OpClass::Control: return SlotClass::Branch;
      case OpClass::Other:
        // Out travels through a move port to the output buffer.
        return op == IOp::Out ? SlotClass::Move : SlotClass::None;
    }
    return SlotClass::None;
}

const char *
slotClassName(SlotClass s)
{
    switch (s) {
      case SlotClass::Mem: return "memory";
      case SlotClass::Alu: return "alu";
      case SlotClass::Move: return "move";
      case SlotClass::Branch: return "control";
      default: return "none";
    }
}

int
slotLimitOf(SlotClass s, const MachineConfig &mc)
{
    switch (s) {
      case SlotClass::Mem: return mc.memPerUnit;
      case SlotClass::Alu: return mc.aluPerUnit;
      case SlotClass::Move: return mc.movePerUnit;
      case SlotClass::Branch: return mc.branchPerUnit;
      default: return 1;
    }
}

// === Independent memory disambiguation ==================================
//
// A fresh implementation of the §4.1 address reasoning: pointers are
// tracked as base-register + constant offset through the address
// arithmetic of one claimed source sequence, memory areas (heap,
// stack, trail, PDL) are disjoint, and a store into a freshly carved
// heap cell aliases nothing older. The rules are intentionally the
// most permissive ones any scheduler configuration may assume, so a
// legal schedule is never rejected; a schedule relying on anything
// stronger is flagged.

enum class Area : std::uint8_t { Heap, Stack, Trail, Pdl, Any };

bool
areasDisjoint(Area a, Area b)
{
    if (a == Area::Any)
        return b == Area::Trail || b == Area::Pdl;
    if (b == Area::Any)
        return a == Area::Trail || a == Area::Pdl;
    return a != b;
}

Area
areaOfReg(int reg)
{
    switch (reg) {
      case R::kH:
      case R::kHb:
        return Area::Heap;
      case R::kE:
      case R::kB:
        return Area::Stack;
      case R::kTr:
        return Area::Trail;
      case R::kPdl:
        return Area::Pdl;
      default:
        return Area::Any;
    }
}

Area
areaOfAddr(std::int64_t a)
{
    if (a >= L::kHeapBase && a < L::kHeapEnd)
        return Area::Heap;
    if (a >= L::kStackBase && a < L::kStackEnd)
        return Area::Stack;
    if (a >= L::kTrailBase && a < L::kTrailEnd)
        return Area::Trail;
    if (a >= L::kPdlBase && a < L::kPdlEnd)
        return Area::Pdl;
    return Area::Any;
}

struct SymAddr
{
    enum class Kind : std::uint8_t { Top, Rel, Abs };
    Kind kind = Kind::Top;
    int base = -1; ///< Rel: base register
    int gen = 0;   ///< Rel: generation of the base value
    std::int64_t off = 0;
    Area area = Area::Any;
};

/** One memory access with its resolved symbolic address. */
struct MemRef
{
    bool isMem = false;
    bool isStore = false;
    bool fresh = false;
    SymAddr addr;
};

/** Forward symbolic evaluation of the address arithmetic along one
 *  claimed source sequence. */
class AddrTracker
{
  public:
    AddrTracker()
    {
        for (int r : {R::kH, R::kE, R::kB, R::kTr, R::kPdl, R::kHb})
            val_[r] = baseVal(r, 0);
    }

    /** Resolve the memory address of @p i (if any), then apply its
     *  register transfer. */
    MemRef
    access(const IInstr &i)
    {
        MemRef m;
        if (i.op == IOp::Ld || i.op == IOp::St) {
            m.isMem = true;
            m.isStore = i.op == IOp::St;
            m.fresh = i.fresh;
            m.addr = of(i.ra);
            if (m.addr.kind != SymAddr::Kind::Top)
                m.addr.off += i.off;
            else if (m.addr.area == Area::Any)
                m.addr.area = areaOfReg(i.ra);
        }
        step(i);
        return m;
    }

  private:
    std::map<int, SymAddr> val_;
    std::map<int, int> gen_;

    static SymAddr
    baseVal(int reg, int gen)
    {
        SymAddr v;
        v.kind = SymAddr::Kind::Rel;
        v.base = reg;
        v.gen = gen;
        v.off = 0;
        v.area = areaOfReg(reg);
        return v;
    }

    SymAddr
    of(int reg) const
    {
        auto it = val_.find(reg);
        return it == val_.end() ? SymAddr{} : it->second;
    }

    /** An architectural base register clobbered by an untracked value
     *  starts a new generation (it still points into its own area,
     *  but at an unknown place). */
    void
    clobberBase(int reg)
    {
        val_[reg] = baseVal(reg, ++gen_[reg]);
    }

    void
    step(const IInstr &i)
    {
        int d = intcode::defReg(i);
        if (d < 0)
            return;
        bool pinned = areaOfReg(d) != Area::Any;
        switch (i.op) {
          case IOp::Mov: {
            SymAddr v = of(i.ra);
            if (pinned && v.kind == SymAddr::Kind::Top)
                clobberBase(d);
            else
                val_[d] = v;
            break;
          }
          case IOp::Movi:
            if (bam::wordTag(i.imm) == Tag::Int) {
                SymAddr v;
                v.kind = SymAddr::Kind::Abs;
                v.off = bam::wordVal(i.imm);
                v.area = areaOfAddr(v.off);
                val_[d] = v;
            } else if (pinned) {
                clobberBase(d);
            } else {
                val_[d] = SymAddr{};
            }
            break;
          case IOp::Add:
          case IOp::Sub: {
            SymAddr v = of(i.ra);
            if (i.useImm && v.kind != SymAddr::Kind::Top) {
                std::int64_t delta = bam::wordVal(i.imm);
                v.off += i.op == IOp::Add ? delta : -delta;
                val_[d] = v;
            } else {
                // reg+reg: only the area survives.
                SymAddr v2;
                Area a2 = i.useImm ? Area::Any : of(i.rb).area;
                v2.area = v.area != Area::Any ? v.area : a2;
                if (pinned && v2.area == Area::Any)
                    clobberBase(d);
                else
                    val_[d] = v2;
            }
            break;
          }
          case IOp::MkTag:
            val_[d] = of(i.ra); // value field preserved
            break;
          default:
            if (pinned)
                clobberBase(d);
            else
                val_[d] = SymAddr{};
            break;
        }
    }
};

/** May accesses @p a (earlier) and @p b (later) touch the same word? */
bool
mayConflict(const MemRef &a, const MemRef &b)
{
    const SymAddr &x = a.addr;
    const SymAddr &y = b.addr;
    if (x.kind == SymAddr::Kind::Rel && y.kind == SymAddr::Kind::Rel &&
        x.base == y.base && x.gen == y.gen)
        return x.off == y.off;
    if (x.kind == SymAddr::Kind::Abs && y.kind == SymAddr::Kind::Abs)
        return x.off == y.off;
    if (areasDisjoint(x.area, y.area))
        return false;
    // Fresh heap cell: nothing older can point at it.
    if (b.isStore && b.fresh)
        return false;
    return true;
}

// === Independent instruction-level liveness =============================
//
// Backward may-be-read analysis over the original program, computed
// directly on instructions (no shared CFG or liveness code): used to
// prove that a speculatively hoisted definition cannot clobber a
// value the off-trace path still needs.

class InstrLiveness
{
  public:
    void
    compute(const intcode::Program &prog, int numRegs)
    {
        n_ = static_cast<int>(prog.code.size());
        words_ = static_cast<std::size_t>((numRegs + 63) / 64);
        bits_.assign(static_cast<std::size_t>(n_) * words_, 0);
        if (n_ == 0 || words_ == 0)
            return;

        std::vector<int> addrTargets;
        for (int k = 0; k < n_; ++k)
            if ((k < static_cast<int>(prog.addressTaken.size()) &&
                 prog.addressTaken[static_cast<std::size_t>(k)]) ||
                (k < static_cast<int>(prog.procEntry.size()) &&
                 prog.procEntry[static_cast<std::size_t>(k)]))
                addrTargets.push_back(k);

        std::vector<std::uint64_t> addrLive(words_, 0);
        std::vector<std::uint64_t> tmp(words_, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            std::fill(addrLive.begin(), addrLive.end(), 0);
            for (int t : addrTargets)
                for (std::size_t w = 0; w < words_; ++w)
                    addrLive[w] |= row(t)[w];
            for (int k = n_ - 1; k >= 0; --k) {
                const IInstr &i =
                    prog.code[static_cast<std::size_t>(k)];
                std::fill(tmp.begin(), tmp.end(), 0);
                auto orIn = [&](int s) {
                    if (s >= 0 && s < n_)
                        for (std::size_t w = 0; w < words_; ++w)
                            tmp[w] |= row(s)[w];
                };
                if (i.op == IOp::Halt) {
                    // no successors
                } else if (i.op == IOp::Jmp) {
                    orIn(i.target);
                } else if (i.op == IOp::Jmpi) {
                    for (std::size_t w = 0; w < words_; ++w)
                        tmp[w] |= addrLive[w];
                } else if (intcode::isCondBranch(i.op)) {
                    orIn(k + 1);
                    orIn(i.target);
                } else {
                    orIn(k + 1);
                }
                int d = intcode::defReg(i);
                if (d >= 0 && d < numRegs)
                    tmp[static_cast<std::size_t>(d) / 64] &=
                        ~(1ull << (static_cast<std::size_t>(d) % 64));
                int uses[2];
                int nu = 0;
                intcode::useRegs(i, uses, nu);
                for (int u = 0; u < nu; ++u)
                    if (uses[u] < numRegs)
                        tmp[static_cast<std::size_t>(uses[u]) / 64] |=
                            1ull
                            << (static_cast<std::size_t>(uses[u]) %
                                64);
                std::uint64_t *r = row(k);
                for (std::size_t w = 0; w < words_; ++w) {
                    if (tmp[w] != r[w]) {
                        r[w] = tmp[w];
                        changed = true;
                    }
                }
            }
        }
    }

    /** May @p reg be read before written starting at @p instr? */
    bool
    live(int instr, int reg) const
    {
        if (instr < 0 || instr >= n_ || reg < 0 ||
            static_cast<std::size_t>(reg) >= words_ * 64)
            return false;
        return (bits_[static_cast<std::size_t>(instr) * words_ +
                      static_cast<std::size_t>(reg) / 64] >>
                (static_cast<std::size_t>(reg) % 64)) &
               1;
    }

  private:
    int n_ = 0;
    std::size_t words_ = 0;
    std::vector<std::uint64_t> bits_;

    std::uint64_t *
    row(int k)
    {
        return bits_.data() + static_cast<std::size_t>(k) * words_;
    }
};

// === The checker ========================================================

class Checker
{
  public:
    Checker(const vliw::Code &code, const intcode::Program &prog,
            const MachineConfig &mc)
        : code_(code), prog_(prog), mc_(mc)
    {
    }

    Report
    run()
    {
        rep_.wideInstrs = code_.code.size();
        rep_.microOps = code_.numOps();
        rep_.regions = code_.regionStart.size();

        bool structure = checkStructure();
        checkResources(); // also collects Cod targets
        if (structure) {
            computeHeadOrigs();
            checkEntryCorrespondence();
            live_.compute(prog_, prog_.numRegs);
            for (std::size_t r = 0; r < starts_.size(); ++r)
                checkRegion(static_cast<int>(r));
            if (entryOk_)
                checkLatencies();
        }
        return std::move(rep_);
    }

  private:
    struct SOp
    {
        int wide = 0;
        int pos = 0;
        int cycle = 0; ///< wide index relative to the region start
        const vliw::MicroOp *m = nullptr;
    };

    const vliw::Code &code_;
    const intcode::Program &prog_;
    const MachineConfig &mc_;
    Report rep_;
    std::vector<int> starts_;    ///< validated region table
    std::vector<int> headOrigs_; ///< first source op per region
    std::set<int> codTargets_;   ///< valid Cod immediates (wide)
    bool entryOk_ = true;
    InstrLiveness live_;

    int
    size() const
    {
        return static_cast<int>(code_.code.size());
    }

    void
    add(Kind k, int wide, int op, std::string detail)
    {
        ++rep_.total;
        ++rep_.byKind[static_cast<std::size_t>(k)];
        if (rep_.violations.size() < Report::kMaxRecorded)
            rep_.violations.push_back(
                {k, wide, op, std::move(detail)});
    }

    bool
    isStart(int w) const
    {
        return std::binary_search(starts_.begin(), starts_.end(), w);
    }

    int
    regionIndexOf(int w) const
    {
        auto it = std::upper_bound(starts_.begin(), starts_.end(), w);
        return static_cast<int>(it - starts_.begin()) - 1;
    }

    // --- Structure ----------------------------------------------------

    bool
    checkStructure()
    {
        const auto &rs = code_.regionStart;
        const int n = size();
        if (n == 0) {
            if (!rs.empty())
                add(Kind::Malformed, -1, -1,
                    "empty code with a non-empty region table");
            entryOk_ = false;
            return false;
        }
        bool ok = true;
        if (rs.empty() || rs.front() != 0) {
            add(Kind::Malformed, -1, -1,
                "region table missing or not starting at wide 0");
            ok = false;
        }
        for (std::size_t k = 1; k < rs.size() && ok; ++k) {
            if (rs[k] <= rs[k - 1] || rs[k] >= n) {
                add(Kind::Malformed, -1, -1,
                    strprintf("region table entry %zu (%d) is not "
                              "ascending and in range",
                              k, rs[k]));
                ok = false;
            }
        }
        if (ok)
            starts_ = rs;
        if (code_.numRegs < prog_.numRegs)
            add(Kind::Malformed, -1, -1,
                strprintf("register file (%d) smaller than the "
                          "source program's (%d)",
                          code_.numRegs, prog_.numRegs));
        if (code_.entry < 0 || code_.entry >= n ||
            (ok && !isStart(code_.entry))) {
            add(Kind::BadTarget, -1, -1,
                strprintf("entry %d is not a region head",
                          code_.entry));
            entryOk_ = false;
        }
        return ok;
    }

    // --- (a) resource legality + per-op sanity -------------------------

    void
    checkResources()
    {
        const int n = size();
        for (int w = 0; w < n; ++w) {
            const auto &ops =
                code_.code[static_cast<std::size_t>(w)].ops;
            struct UnitUse
            {
                std::array<int, 4> slots{};
                bool ctl = false;
                bool data = false;
            };
            std::map<int, UnitUse> use;
            int memOps = 0;
            bool exitSeen = false;
            for (std::size_t p = 0; p < ops.size(); ++p) {
                int pos = static_cast<int>(p);
                const vliw::MicroOp &m = ops[p];
                const IInstr &i = m.instr;
                bool unitOk = m.unit >= 0 && m.unit < mc_.numUnits;
                if (!unitOk)
                    add(Kind::BadUnit, w, pos,
                        strprintf("unit %d outside [0, %d)", m.unit,
                                  mc_.numUnits));
                checkRegisters(w, pos, i);
                if (intcode::isCondBranch(i.op) || i.op == IOp::Jmp) {
                    if (i.target < 0 || i.target >= n)
                        add(Kind::BadTarget, w, pos,
                            strprintf("branch target %d out of range",
                                      i.target));
                    else if (!starts_.empty() && !isStart(i.target))
                        add(Kind::BadTarget, w, pos,
                            strprintf("branch target %d is not a "
                                      "region head",
                                      i.target));
                }
                if (i.useImm && bam::wordTag(i.imm) == Tag::Cod) {
                    int t = static_cast<int>(bam::wordVal(i.imm));
                    if (t < 0 || t >= n ||
                        (!starts_.empty() && !isStart(t)))
                        add(Kind::BadTarget, w, pos,
                            strprintf("code-address immediate %d is "
                                      "not a region head",
                                      t));
                    else
                        codTargets_.insert(t);
                }
                if (intcode::isControl(i.op)) {
                    if (exitSeen)
                        add(Kind::BranchOrder, w, pos,
                            "control op after an unconditional exit "
                            "in the same instruction");
                    if (i.op == IOp::Jmp || i.op == IOp::Jmpi ||
                        i.op == IOp::Halt)
                        exitSeen = true;
                }
                SlotClass s = slotClassOf(i.op);
                if (s == SlotClass::None)
                    continue;
                if (s == SlotClass::Mem)
                    ++memOps;
                if (unitOk) {
                    UnitUse &u = use[m.unit];
                    ++u.slots[static_cast<std::size_t>(s)];
                    if (s == SlotClass::Branch)
                        u.ctl = true;
                    if (s == SlotClass::Alu || s == SlotClass::Move)
                        u.data = true;
                }
            }
            for (const auto &[u, uu] : use) {
                for (int c = 0; c < 4; ++c) {
                    SlotClass s = static_cast<SlotClass>(c);
                    int limit = slotLimitOf(s, mc_);
                    if (uu.slots[static_cast<std::size_t>(c)] > limit)
                        add(Kind::SlotLimit, w, -1,
                            strprintf(
                                "unit %d issues %d %s ops (limit %d)",
                                u,
                                uu.slots[static_cast<std::size_t>(c)],
                                slotClassName(s), limit));
                }
                if (mc_.twoFormats && uu.ctl && uu.data)
                    add(Kind::Format, w, -1,
                        strprintf("unit %d mixes control and data "
                                  "formats",
                                  u));
            }
            if (memOps > mc_.memPortsTotal)
                add(Kind::MemPorts, w, -1,
                    strprintf("%d memory ops issued (%d ports)",
                              memOps, mc_.memPortsTotal));
        }
    }

    void
    checkRegisters(int w, int pos, const IInstr &i)
    {
        int d = intcode::defReg(i);
        bool needsDef = intcode::opClass(i.op) == OpClass::Alu ||
                        intcode::opClass(i.op) == OpClass::Move ||
                        i.op == IOp::Ld;
        if (needsDef && (d < 0 || d >= code_.numRegs))
            add(Kind::BadRegister, w, pos,
                strprintf("destination register %d out of range", d));
        int uses[2];
        int nu = 0;
        intcode::useRegs(i, uses, nu);
        for (int u = 0; u < nu; ++u)
            if (uses[u] >= code_.numRegs)
                add(Kind::BadRegister, w, pos,
                    strprintf("source register %d out of range",
                              uses[u]));
    }

    // --- Provenance ----------------------------------------------------

    /**
     * Can control reach instruction @p to from @p from in the
     * original program executing nothing (only falling through Nops
     * and following direct jumps, neither of which the compactor
     * emits)?
     */
    bool
    chases(int from, int to) const
    {
        int cur = from;
        int steps = static_cast<int>(prog_.code.size()) + 1;
        while (steps-- > 0) {
            if (cur < 0 ||
                cur >= static_cast<int>(prog_.code.size()))
                return false;
            if (cur == to)
                return true;
            const IInstr &i =
                prog_.code[static_cast<std::size_t>(cur)];
            if (i.op == IOp::Nop)
                cur = cur + 1;
            else if (i.op == IOp::Jmp)
                cur = i.target;
            else
                return false;
        }
        return false;
    }

    /** Does wide index @p wideIdx denote the code the original
     *  program reaches at instruction @p srcIdx? */
    bool
    corresponds(int srcIdx, int wideIdx) const
    {
        if (wideIdx < 0 || wideIdx >= size() || !isStart(wideIdx))
            return false;
        int ho = headOrigs_[static_cast<std::size_t>(
            regionIndexOf(wideIdx))];
        if (ho < 0)
            return true; // region has no source ops to refute it
        return chases(srcIdx, ho);
    }

    void
    computeHeadOrigs()
    {
        headOrigs_.assign(starts_.size(), -1);
        for (std::size_t r = 0; r < starts_.size(); ++r) {
            int start = starts_[r];
            int end = r + 1 < starts_.size()
                          ? starts_[r + 1]
                          : size();
            int bestSeq = -1;
            for (int w = start; w < end; ++w)
                for (const vliw::MicroOp &m :
                     code_.code[static_cast<std::size_t>(w)].ops)
                    if (m.orig >= 0 && m.seq >= 0 &&
                        (bestSeq < 0 || m.seq < bestSeq)) {
                        bestSeq = m.seq;
                        headOrigs_[r] = m.orig;
                    }
        }
    }

    void
    checkEntryCorrespondence()
    {
        if (!entryOk_)
            return;
        int ho = headOrigs_[static_cast<std::size_t>(
            regionIndexOf(code_.entry))];
        if (ho >= 0 && !chases(prog_.entry, ho))
            add(Kind::BadTarget, code_.entry, -1,
                strprintf("entry region does not correspond to "
                          "program entry %d",
                          prog_.entry));
    }

    /** The source instruction an op claims to implement (itself for
     *  the synthetic trace-exit jump). */
    const IInstr &
    srcOf(const SOp &s) const
    {
        if (s.m->orig >= 0 &&
            s.m->orig < static_cast<int>(prog_.code.size()))
            return prog_.code[static_cast<std::size_t>(s.m->orig)];
        return s.m->instr;
    }

    /** Validate one op against its claimed source instruction.
     *  Returns false when the claim is broken. */
    bool
    checkOpProvenance(const SOp &s, std::size_t k, std::size_t nS)
    {
        const IInstr &i = s.m->instr;
        int o = s.m->orig;
        if (o < 0) {
            if (i.op != IOp::Jmp) {
                add(Kind::Mismatch, s.wide, s.pos,
                    "synthetic op is not a trace-exit jump");
                return false;
            }
            if (k + 1 != nS) {
                add(Kind::NotAPath, s.wide, s.pos,
                    "ops follow the synthetic trace-exit jump");
                return false;
            }
            return true;
        }
        if (o >= static_cast<int>(prog_.code.size())) {
            add(Kind::Malformed, s.wide, s.pos,
                strprintf("source index %d out of range", o));
            return false;
        }
        const IInstr &src =
            prog_.code[static_cast<std::size_t>(o)];
        bool fields = i.rd == src.rd && i.ra == src.ra &&
                      i.rb == src.rb && i.useImm == src.useImm &&
                      i.off == src.off && i.tag == src.tag &&
                      i.fresh == src.fresh;
        if (fields && i.useImm) {
            if (bam::wordTag(src.imm) == Tag::Cod) {
                // Rewritten by the compactor: validate the mapping.
                if (bam::wordTag(i.imm) != Tag::Cod ||
                    !corresponds(
                        static_cast<int>(bam::wordVal(src.imm)),
                        static_cast<int>(bam::wordVal(i.imm)))) {
                    add(Kind::Mismatch, s.wide, s.pos,
                        strprintf("code-address immediate does not "
                                  "correspond to source %d",
                                  o));
                    return false;
                }
            } else if (i.imm != src.imm) {
                fields = false;
            }
        }
        if (!fields) {
            add(Kind::Mismatch, s.wide, s.pos,
                strprintf("operands differ from source "
                          "instruction %d",
                          o));
            return false;
        }
        if (i.op == src.op) {
            if ((intcode::isCondBranch(i.op) || i.op == IOp::Jmp) &&
                !corresponds(src.target, i.target)) {
                add(Kind::Mismatch, s.wide, s.pos,
                    strprintf("branch target does not correspond to "
                              "source target %d",
                              src.target));
                return false;
            }
            return true;
        }
        if (intcode::isCondBranch(src.op) &&
            i.op == intcode::invertBranch(src.op)) {
            // Inverted split: the wide target is the source
            // fallthrough.
            if (!corresponds(o + 1, i.target)) {
                add(Kind::Mismatch, s.wide, s.pos,
                    strprintf("inverted branch target does not "
                              "correspond to fallthrough %d",
                              o + 1));
                return false;
            }
            return true;
        }
        add(Kind::Mismatch, s.wide, s.pos,
            strprintf("opcode differs from source instruction %d",
                      o));
        return false;
    }

    /** b directly follows a in the claimed sequence: is that a step
     *  the original program can take? */
    void
    checkFollows(const SOp &a, const SOp &b)
    {
        if (b.m->orig < 0)
            return; // synthetic exit, target checked elsewhere
        const IInstr &src = srcOf(a);
        if (src.op == IOp::Jmpi || src.op == IOp::Halt) {
            add(Kind::NotAPath, b.wide, b.pos,
                strprintf("source %d follows an unconditional exit",
                          b.m->orig));
            return;
        }
        int startI;
        if (intcode::isCondBranch(src.op))
            // Same opcode: the trace fell through. Inverted: the
            // trace followed the taken edge.
            startI = a.m->instr.op == src.op ? a.m->orig + 1
                                             : src.target;
        else if (src.op == IOp::Jmp)
            startI = src.target;
        else
            startI = a.m->orig + 1;
        if (!chases(startI, b.m->orig))
            add(Kind::NotAPath, b.wide, b.pos,
                strprintf("source %d does not follow source %d on "
                          "any program path",
                          b.m->orig, a.m->orig));
    }

    // --- (c) per-region dependence preservation ------------------------

    void
    checkRegion(int r)
    {
        int start = starts_[static_cast<std::size_t>(r)];
        int end = static_cast<std::size_t>(r) + 1 < starts_.size()
                      ? starts_[static_cast<std::size_t>(r) + 1]
                      : size();
        std::vector<SOp> s;
        for (int w = start; w < end; ++w) {
            const auto &ops =
                code_.code[static_cast<std::size_t>(w)].ops;
            for (std::size_t p = 0; p < ops.size(); ++p)
                s.push_back({w, static_cast<int>(p), w - start,
                             &ops[p]});
        }
        if (s.empty())
            return;
        std::stable_sort(s.begin(), s.end(),
                         [](const SOp &a, const SOp &b) {
                             return a.m->seq < b.m->seq;
                         });
        for (const SOp &op : s) {
            if (op.m->seq < 0) {
                add(Kind::Malformed, op.wide, op.pos,
                    "micro-op without provenance (seq unset)");
                return;
            }
        }
        for (std::size_t k = 1; k < s.size(); ++k) {
            if (s[k].m->seq == s[k - 1].m->seq) {
                add(Kind::Malformed, s[k].wide, s[k].pos,
                    strprintf("duplicate sequence position %d",
                              s[k].m->seq));
                return;
            }
        }

        bool provOk = true;
        for (std::size_t k = 0; k < s.size(); ++k)
            provOk &= checkOpProvenance(s[k], k, s.size());
        if (provOk)
            for (std::size_t k = 1; k < s.size(); ++k)
                checkFollows(s[k - 1], s[k]);

        checkDeps(s);
        checkBus(start, end);
    }

    void
    checkDeps(const std::vector<SOp> &s)
    {
        AddrTracker addr;
        std::map<int, int> lastDef;  ///< reg -> S index
        std::map<int, std::vector<int>> readers;
        std::vector<int> memIdx;
        std::vector<MemRef> memRef(s.size());
        std::vector<int> branches;
        int lastOut = -1, lastBranch = -1;
        int maxDataCycle = -1, maxDataIdx = -1;

        auto cyc = [&](int k) {
            return s[static_cast<std::size_t>(k)].cycle;
        };
        auto pos = [&](int k) {
            return s[static_cast<std::size_t>(k)].pos;
        };
        // (cycle, position) priority order: strictly before.
        auto before = [&](int i, int j) {
            return cyc(i) < cyc(j) ||
                   (cyc(i) == cyc(j) && pos(i) < pos(j));
        };

        for (int k = 0; k < static_cast<int>(s.size()); ++k) {
            const SOp &sk = s[static_cast<std::size_t>(k)];
            const IInstr &ins = srcOf(sk);

            // True dependences: a consumer reads pre-cycle state, so
            // it must issue at or after the producer's commit.
            int uses[2];
            int nu = 0;
            intcode::useRegs(ins, uses, nu);
            for (int u = 0; u < nu; ++u) {
                auto it = lastDef.find(uses[u]);
                if (it != lastDef.end()) {
                    ++rep_.depEdges;
                    int d = it->second;
                    int need =
                        cyc(d) +
                        opLatency(srcOf(s[static_cast<std::size_t>(
                                      d)]),
                                  mc_);
                    if (cyc(k) < need)
                        add(Kind::DepOrder, sk.wide, sk.pos,
                            strprintf(
                                "consumes r%d at region cycle %d; "
                                "its producer (source %d) commits "
                                "at %d",
                                uses[u], cyc(k),
                                s[static_cast<std::size_t>(d)]
                                    .m->orig,
                                need));
                }
                readers[uses[u]].push_back(k);
            }

            int d = intcode::defReg(ins);
            if (d >= 0) {
                auto it = lastDef.find(d);
                if (it != lastDef.end()) {
                    ++rep_.depEdges;
                    int p = it->second;
                    int ci =
                        cyc(p) +
                        opLatency(srcOf(s[static_cast<std::size_t>(
                                      p)]),
                                  mc_);
                    int cj = cyc(k) + opLatency(ins, mc_);
                    if (cj <= ci)
                        add(Kind::DepOrder, sk.wide, sk.pos,
                            strprintf(
                                "output dependence on r%d not "
                                "preserved (source %d must commit "
                                "after source %d)",
                                d, sk.m->orig,
                                s[static_cast<std::size_t>(p)]
                                    .m->orig));
                }
                for (int rk : readers[d]) {
                    if (rk == k)
                        continue;
                    ++rep_.depEdges;
                    if (cyc(k) < cyc(rk))
                        add(Kind::DepOrder, sk.wide, sk.pos,
                            strprintf(
                                "anti dependence on r%d: write at "
                                "cycle %d precedes its reader at %d",
                                d, cyc(k), cyc(rk)));
                }
                readers[d].clear();
                lastDef[d] = k;
            }

            // Memory ordering, with independent disambiguation.
            MemRef mr = addr.access(ins);
            memRef[static_cast<std::size_t>(k)] = mr;
            if (mr.isMem) {
                for (int i : memIdx) {
                    const MemRef &a =
                        memRef[static_cast<std::size_t>(i)];
                    if (!a.isStore && !mr.isStore)
                        continue; // load-load never conflicts
                    if (!mayConflict(a, mr))
                        continue;
                    ++rep_.depEdges;
                    bool ok;
                    if (a.isStore && mr.isStore)
                        // Same-cycle stores commit in op order.
                        ok = before(i, k);
                    else if (a.isStore)
                        // A load reads pre-cycle memory: it must
                        // issue strictly after the store's cycle.
                        ok = cyc(k) > cyc(i);
                    else
                        // Store after load: same cycle is fine.
                        ok = cyc(k) >= cyc(i);
                    if (!ok)
                        add(Kind::DepOrder, sk.wide, sk.pos,
                            strprintf(
                                "memory dependence reordered "
                                "(source %d vs %d)",
                                sk.m->orig,
                                s[static_cast<std::size_t>(i)]
                                    .m->orig));
                }
                memIdx.push_back(k);
            }

            // Observable output order.
            if (ins.op == IOp::Out) {
                if (lastOut >= 0) {
                    ++rep_.depEdges;
                    if (!before(lastOut, k))
                        add(Kind::DepOrder, sk.wide, sk.pos,
                            "output operations reordered");
                }
                lastOut = k;
            }

            if (intcode::isControl(ins.op)) {
                // Branch priority must follow source order.
                if (lastBranch >= 0 && !before(lastBranch, k))
                    add(Kind::BranchOrder, sk.wide, sk.pos,
                        "branch issued before or at the priority "
                        "slot of an earlier branch");
                // Nothing that preceded a branch may sink below it.
                if (maxDataCycle > cyc(k))
                    add(Kind::DepOrder, sk.wide, sk.pos,
                        strprintf("op (source %d) sinks below the "
                                  "branch",
                                  s[static_cast<std::size_t>(
                                       maxDataIdx)]
                                      .m->orig));
                lastBranch = k;
                branches.push_back(k);
            } else {
                if (cyc(k) > maxDataCycle) {
                    maxDataCycle = cyc(k);
                    maxDataIdx = k;
                }
                for (int b : branches) {
                    if (cyc(k) > cyc(b))
                        continue; // not hoisted above this split
                    if (!harmlessIfSpeculated(ins)) {
                        add(Kind::Speculation, sk.wide, sk.pos,
                            strprintf("side-effecting op (source "
                                      "%d) hoisted above a split",
                                      sk.m->orig));
                        continue;
                    }
                    if (d < 0)
                        continue;
                    int off = offPathStartOf(
                        s[static_cast<std::size_t>(b)]);
                    if (off >= 0 && live_.live(off, d))
                        add(Kind::Speculation, sk.wide, sk.pos,
                            strprintf(
                                "hoisted def of r%d is live on the "
                                "off-trace path (source %d)",
                                d, off));
                }
            }
        }
    }

    /** First original instruction of a split's off-trace path. */
    int
    offPathStartOf(const SOp &b) const
    {
        int o = b.m->orig;
        if (o < 0 ||
            o >= static_cast<int>(prog_.code.size()))
            return -1;
        const IInstr &src =
            prog_.code[static_cast<std::size_t>(o)];
        if (!intcode::isCondBranch(src.op))
            return -1;
        if (b.m->instr.op == src.op)
            return src.target;
        if (b.m->instr.op == intcode::invertBranch(src.op))
            return o + 1;
        return -1;
    }

    // --- (a) inter-unit bus limits (clustered machines) -----------------

    void
    checkBus(int start, int end)
    {
        if (!mc_.clustered)
            return;
        struct Def
        {
            int cycle;
            int unit;
            int lat;
        };
        std::map<int, Def> lastDef;
        for (int w = start; w < end; ++w) {
            int cycle = w - start;
            const auto &ops =
                code_.code[static_cast<std::size_t>(w)].ops;
            int crossings = 0;
            for (std::size_t p = 0; p < ops.size(); ++p) {
                const vliw::MicroOp &m = ops[p];
                int uses[2];
                int nu = 0;
                intcode::useRegs(m.instr, uses, nu);
                for (int u = 0; u < nu; ++u) {
                    auto it = lastDef.find(uses[u]);
                    // Only region-local producers ride the bus: a
                    // live-in value sits in every bank by the time
                    // the region starts.
                    if (it == lastDef.end() ||
                        it->second.cycle >= cycle)
                        continue;
                    if (it->second.unit == m.unit)
                        continue;
                    ++crossings;
                    if (cycle < it->second.cycle + it->second.lat +
                                    mc_.busLatency)
                        add(Kind::BusLatency, w,
                            static_cast<int>(p),
                            strprintf(
                                "r%d consumed on unit %d before it "
                                "crossed the bus (producer on unit "
                                "%d commits at %d, bus latency %d)",
                                uses[u], m.unit, it->second.unit,
                                it->second.cycle + it->second.lat,
                                mc_.busLatency));
                }
            }
            // Defs become visible to later cycles only.
            for (const vliw::MicroOp &m : ops) {
                int d = intcode::defReg(m.instr);
                if (d >= 0)
                    lastDef[d] = {cycle, m.unit,
                                  opLatency(m.instr, mc_)};
            }
            if (crossings > mc_.busTransfersPerCycle)
                add(Kind::BusLimit, w, -1,
                    strprintf("%d bus transfers in one cycle "
                              "(limit %d)",
                              crossings, mc_.busTransfersPerCycle));
        }
    }

    // --- (b) latency feasibility over the wide-code CFG -----------------

    /** Static successors of wide instr @p w with the cycles that
     *  elapse along each edge. */
    std::vector<std::pair<int, int>>
    successorsOf(int w, bool *fallsOff) const
    {
        std::vector<std::pair<int, int>> out;
        const auto &ops =
            code_.code[static_cast<std::size_t>(w)].ops;
        int taken = 1 + mc_.branchPenalty;
        // Halt always ends the cycle, whatever else is issued.
        for (const vliw::MicroOp &m : ops)
            if (m.instr.op == IOp::Halt)
                return out;
        bool uncond = false;
        for (const vliw::MicroOp &m : ops) {
            const IInstr &i = m.instr;
            if (intcode::isCondBranch(i.op)) {
                if (i.target >= 0 && i.target < size())
                    out.push_back({i.target, taken});
            } else if (i.op == IOp::Jmp) {
                if (i.target >= 0 && i.target < size())
                    out.push_back({i.target, taken});
                uncond = true;
                break;
            } else if (i.op == IOp::Jmpi) {
                for (int t : codTargets_)
                    out.push_back({t, taken});
                uncond = true;
                break;
            }
        }
        if (!uncond) {
            if (w + 1 < size())
                out.push_back({w + 1, 1});
            else if (fallsOff)
                *fallsOff = true;
        }
        return out;
    }

    void
    checkLatencies()
    {
        const int n = size();
        // in[w]: per register, worst-case cycles until an in-flight
        // write commits, measured at the start of w's cycle.
        std::vector<std::map<int, int>> in(
            static_cast<std::size_t>(n));
        std::vector<char> reached(static_cast<std::size_t>(n), 0);
        std::deque<int> wl;
        reached[static_cast<std::size_t>(code_.entry)] = 1;
        wl.push_back(code_.entry);

        auto outState = [&](int w) {
            std::map<int, int> out =
                in[static_cast<std::size_t>(w)];
            for (const vliw::MicroOp &m :
                 code_.code[static_cast<std::size_t>(w)].ops) {
                int d = intcode::defReg(m.instr);
                if (d >= 0)
                    out[d] = opLatency(m.instr, mc_);
            }
            return out;
        };

        while (!wl.empty()) {
            int w = wl.front();
            wl.pop_front();
            std::map<int, int> out = outState(w);
            for (auto [t, elapsed] : successorsOf(w, nullptr)) {
                std::size_t st = static_cast<std::size_t>(t);
                bool changed = false;
                if (!reached[st]) {
                    reached[st] = 1;
                    changed = true;
                }
                for (auto [reg, c] : out) {
                    int nc = c - elapsed;
                    if (nc <= 0)
                        continue;
                    auto it = in[st].find(reg);
                    if (it == in[st].end()) {
                        in[st][reg] = nc;
                        changed = true;
                    } else if (it->second < nc) {
                        it->second = nc;
                        changed = true;
                    }
                }
                if (changed)
                    wl.push_back(t);
            }
        }

        // Report against the converged states.
        for (int w = 0; w < n; ++w) {
            if (!reached[static_cast<std::size_t>(w)])
                continue;
            ++rep_.reachableWide;
            const std::map<int, int> &st =
                in[static_cast<std::size_t>(w)];
            auto pending = [&](int reg) {
                auto it = st.find(reg);
                return it == st.end() ? 0 : it->second;
            };
            const auto &ops =
                code_.code[static_cast<std::size_t>(w)].ops;
            for (std::size_t p = 0; p < ops.size(); ++p) {
                int uses[2];
                int nu = 0;
                intcode::useRegs(ops[p].instr, uses, nu);
                for (int u = 0; u < nu; ++u)
                    if (pending(uses[u]) > 0)
                        add(Kind::Latency, w, static_cast<int>(p),
                            strprintf(
                                "reads r%d %d cycle(s) before its "
                                "producer commits on some static "
                                "path",
                                uses[u], pending(uses[u])));
            }
            std::map<int, int> written; // reg -> latency this cycle
            for (std::size_t p = 0; p < ops.size(); ++p) {
                int d = intcode::defReg(ops[p].instr);
                if (d < 0)
                    continue;
                int lat = opLatency(ops[p].instr, mc_);
                auto it = written.find(d);
                // A new write must commit strictly after any write
                // still in flight (the file has one write port per
                // register; the sim models a single pending slot).
                if (pending(d) >= lat || it != written.end())
                    add(Kind::WriteOverlap, w, static_cast<int>(p),
                        strprintf("write of r%d while an earlier "
                                  "write is still in flight",
                                  d));
                written[d] = lat;
            }
            bool fallsOff = false;
            successorsOf(w, &fallsOff);
            if (fallsOff)
                add(Kind::BadTarget, w, -1,
                    "control can fall off the end of the code");
        }
    }
};

} // namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Malformed: return "Malformed";
      case Kind::Mismatch: return "Mismatch";
      case Kind::NotAPath: return "NotAPath";
      case Kind::BadUnit: return "BadUnit";
      case Kind::SlotLimit: return "SlotLimit";
      case Kind::MemPorts: return "MemPorts";
      case Kind::Format: return "Format";
      case Kind::BusLimit: return "BusLimit";
      case Kind::BusLatency: return "BusLatency";
      case Kind::BadRegister: return "BadRegister";
      case Kind::BadTarget: return "BadTarget";
      case Kind::Latency: return "Latency";
      case Kind::WriteOverlap: return "WriteOverlap";
      case Kind::DepOrder: return "DepOrder";
      case Kind::BranchOrder: return "BranchOrder";
      case Kind::Speculation: return "Speculation";
    }
    return "?";
}

std::string
Violation::str() const
{
    return strprintf("[%s] wide %d op %d: %s", kindName(kind), wide,
                     op, detail.c_str());
}

std::string
Report::str() const
{
    std::string out = strprintf(
        "schedule verification: %s — %zu wide instrs (%zu "
        "reachable), %zu micro-ops, %zu regions, %zu dependence "
        "edges checked\n",
        ok() ? "OK" : "FAILED", wideInstrs, reachableWide, microOps,
        regions, depEdges);
    if (ok())
        return out;
    out += strprintf("%llu violation(s):\n",
                     static_cast<unsigned long long>(total));
    for (int k = 0; k < kNumKinds; ++k)
        if (byKind[static_cast<std::size_t>(k)])
            out += strprintf(
                "  %-12s %llu\n", kindName(static_cast<Kind>(k)),
                static_cast<unsigned long long>(
                    byKind[static_cast<std::size_t>(k)]));
    for (const Violation &v : violations)
        out += "  " + v.str() + "\n";
    if (total > violations.size())
        out += strprintf("  ... and %llu more\n",
                         static_cast<unsigned long long>(
                             total - violations.size()));
    return out;
}

Report
checkSchedule(const vliw::Code &code, const intcode::Program &prog,
              const machine::MachineConfig &config)
{
    return Checker(code, prog, config).run();
}

} // namespace symbol::verify
