/**
 * @file
 * The BAM-level intermediate representation (§2, §3.1 of the paper).
 *
 * Instructions at this level still express Prolog-engine macro
 * operations (dereference, trail, choice-point management, specialised
 * unification steps) together with plain RISC-like moves, loads,
 * stores, ALU operations and branches. The BAM→IntCode translator
 * expands every macro instruction into primitive ICIs; the provenance
 * link it records is what allows the analysis layer to charge
 * BAM-processor cycle costs for the paper's baseline comparison.
 */

#ifndef SYMBOL_BAM_INSTR_HH
#define SYMBOL_BAM_INSTR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "bam/word.hh"
#include "support/interner.hh"

namespace symbol::bam
{

/** BAM opcodes. */
enum class Op : std::uint8_t
{
    // Structure / control.
    Procedure,   ///< procedure entry annotation (also defines a label)
    Label,       ///< label definition
    Jump,        ///< unconditional jump to label
    JumpInd,     ///< jump through a Cod word in a register
    Call,        ///< set CP to the following instruction, jump to label
    Return,      ///< jump through CP
    Halt,        ///< stop the machine
    // Conditionals.
    SwitchTag,   ///< five-way dispatch on the tag of a register
    TestTag,     ///< branch if tag(a) ==/!= tag
    CmpBranch,   ///< branch on signed value-field comparison
    EqualBranch, ///< branch on full-word (tag+value) comparison
    // Prolog-engine macros.
    Deref,       ///< pointer-chase a Ref chain to its end
    Trail,       ///< conditionally record a binding on the trail
    Bind,        ///< store a value into an unbound cell + Trail
    Allocate,    ///< push an environment frame of N permanent slots
    Deallocate,  ///< pop the current environment frame
    Try,         ///< push a choice point saving N argument registers
    Retry,       ///< update the retry address of the current CP
    Trust,       ///< pop the current choice point
    Cut,         ///< reset B (and HB) to a saved choice point
    Fail,        ///< enter the backtracking routine
    // Data movement / computation.
    Move,        ///< register or immediate move
    Ld,          ///< load  dst <- [base+off]
    St,          ///< store [base+off] <- src
    Arith,       ///< ALU op on value fields, result tagged Int
    MkTag,       ///< retag: dst <- <tag, value(src)>
    GetTag,      ///< dst <- <Int, tag(src)>
    Out,         ///< append a word to the observable output
    Nop,
};

/** Comparison conditions. */
enum class Cond : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** ALU operations. */
enum class AluOp : std::uint8_t
{
    Add, Sub, Mul, Div, Mod, And, Or, Xor, Sll, Sra
};

/** An instruction operand: none, register, tagged immediate, label. */
struct Operand
{
    enum class Kind : std::uint8_t { None, Reg, Imm, Lab };

    Kind kind = Kind::None;
    int reg = -1;
    Word imm = 0;
    int label = -1;

    static Operand none() { return {}; }

    static Operand
    mkReg(int r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    mkImm(Tag tag, std::int64_t value)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = makeWord(tag, value);
        return o;
    }

    static Operand
    mkLab(int label)
    {
        Operand o;
        o.kind = Kind::Lab;
        o.label = label;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Number of SwitchTag targets: Ref, Atm, Int, Lst, Str. */
constexpr int kSwitchWays = 5;

/** One BAM instruction. */
struct Instr
{
    Op op = Op::Nop;
    Cond cond = Cond::Eq;
    AluOp alu = AluOp::Add;
    Tag tag = Tag::Ref;
    /**
     * Operand roles by opcode:
     *  - Jump/Call: labs[0] target
     *  - JumpInd: a = address register
     *  - SwitchTag: a = scrutinee, labs[0..4] = Ref,Atm,Int,Lst,Str
     *  - TestTag: a = scrutinee, tag, cond in {Eq,Ne}, labs[0]
     *  - CmpBranch/EqualBranch: a, b compared, labs[0]
     *  - Deref: a = source, b = destination
     *  - Trail: a = Ref word whose binding may need recording
     *  - Bind: a = Ref word (the cell), b = value to store
     *  - Allocate: off = permanent-slot count
     *  - Try/Retry: off = saved-argument count, labs[0] = retry target
     *  - Trust: off = saved-argument count
     *  - Cut: a = register holding the saved B word
     *  - Move: a = source (reg/imm), b = destination register
     *  - Ld: b = destination, a = base register, off = offset
     *  - St: a = base register, off = offset, b = source (reg/imm)
     *  - Arith: a, b = sources (reg/imm), c = destination
     *  - MkTag/GetTag: a = source, b = destination
     *  - Out: a = source (reg/imm)
     *  - Procedure/Label: labs[0] = label being defined
     */
    Operand a, b, c;
    int off = 0;
    int labs[kSwitchWays] = {-1, -1, -1, -1, -1};
    /**
     * For St: the store targets a freshly allocated heap cell (a
     * sound memory-disambiguation hint — nothing can alias memory
     * above the old heap top). For Call/Return: 'off' holds the link
     * register (kCp for predicate calls, kRr for runtime calls).
     */
    bool fresh = false;
    /** Procedure name or other annotation for listings. */
    std::string comment;
};

/** A translation unit of BAM code. */
struct Module
{
    explicit Module(Interner &interner) : interner(&interner) {}

    std::vector<Instr> code;
    int numLabels = 0;
    /** "name/arity" -> entry label. */
    std::unordered_map<std::string, int> procEntry;
    int entryLabel = -1; ///< the $start procedure
    int failLabel = -1;  ///< the $fail backtracking routine
    /** One past the highest virtual register referenced. */
    int numRegs = 0;
    Interner *interner;

    /** Allocate a fresh label id. */
    int
    newLabel()
    {
        return numLabels++;
    }

    void
    emit(Instr i)
    {
        noteOperand(i.a);
        noteOperand(i.b);
        noteOperand(i.c);
        code.push_back(std::move(i));
    }

  private:
    void
    noteOperand(const Operand &o)
    {
        if (o.isReg() && o.reg + 1 > numRegs)
            numRegs = o.reg + 1;
    }
};

/** Render a human-readable listing of @p module. */
std::string print(const Module &module);

/** Render a single instruction (without provenance). */
std::string print(const Module &module, const Instr &instr);

/**
 * Check structural well-formedness: every label used is defined
 * exactly once, operand kinds match opcodes, register indices are
 * non-negative. Returns a list of human-readable problems (empty when
 * the module verifies).
 */
std::vector<std::string> verify(const Module &module);

} // namespace symbol::bam

#endif // SYMBOL_BAM_INSTR_HH
