#include "bam/word.hh"

namespace symbol::bam
{

const char *
tagName(Tag tag)
{
    switch (tag) {
      case Tag::Ref: return "ref";
      case Tag::Lst: return "lst";
      case Tag::Str: return "str";
      case Tag::Atm: return "atm";
      case Tag::Int: return "int";
      case Tag::Cod: return "cod";
      case Tag::Fun: return "fun";
    }
    return "?";
}

} // namespace symbol::bam
