/**
 * @file
 * The tagged machine-word model shared by the whole toolchain.
 *
 * The paper's datapath (§5.2) holds 32-bit words split into independent
 * fields: a 28-bit value, a 3-bit tag and a cdr bit. We model the same
 * structure inside a 64-bit host word with a comfortable 32-bit value
 * field; the field separation (the property the architecture exploits)
 * is what matters, not the exact widths.
 *
 * This header also fixes the data-memory layout of the abstract
 * machine (heap / local stack / trail / push-down list — the BAM and
 * WAM stack areas of §4.1) and the virtual-register conventions used
 * by the compiler before unit binding.
 */

#ifndef SYMBOL_BAM_WORD_HH
#define SYMBOL_BAM_WORD_HH

#include <cstdint>
#include <string>

#include "support/diagnostics.hh"

namespace symbol::bam
{

/** Data tags of the BAM model. */
enum class Tag : std::uint8_t
{
    Ref = 0, ///< reference / unbound variable
    Lst = 1, ///< pointer to a 2-word list cell
    Str = 2, ///< pointer to a functor word followed by arguments
    Atm = 3, ///< atomic constant (value = atom id)
    Int = 4, ///< integer constant (value = signed integer)
    Cod = 5, ///< code address (value = instruction index)
    Fun = 6, ///< functor header word inside a structure
};

constexpr int kNumTags = 7;

/** A machine word: value + tag fields packed for the emulators. */
using Word = std::uint64_t;

/** Build a word from tag and (signed) value. */
constexpr Word
makeWord(Tag tag, std::int64_t value)
{
    return (static_cast<Word>(static_cast<std::uint8_t>(tag)) << 32) |
           (static_cast<Word>(value) & 0xffffffffull);
}

/** The tag field of a word. */
constexpr Tag
wordTag(Word w)
{
    return static_cast<Tag>((w >> 32) & 0x7);
}

/** The value field of a word, sign-extended. */
constexpr std::int64_t
wordVal(Word w)
{
    return static_cast<std::int64_t>(
        static_cast<std::int32_t>(w & 0xffffffffull));
}

/** Widest arity the 8-bit field of a Fun word value can hold. */
constexpr int kMaxFunctorArity = 255;

/**
 * Pack a functor header (atom id + arity) into a Fun word value.
 * The arity field is 8 bits wide; an arity outside [0, 255] used to
 * be silently masked — aliasing e.g. f/256 with f/0 — so the encoder
 * rejects it instead.
 */
constexpr std::int64_t
functorValue(std::int32_t atom, int arity)
{
    return (arity < 0 || arity > kMaxFunctorArity)
               ? throw CompileError(
                     "functor arity " + std::to_string(arity) +
                     " does not fit the 8-bit arity field "
                     "(max " + std::to_string(kMaxFunctorArity) +
                     ")")
               : (static_cast<std::int64_t>(atom) << 8) |
                     static_cast<std::int64_t>(arity);
}

constexpr std::int32_t
functorAtom(std::int64_t fun_value)
{
    return static_cast<std::int32_t>(fun_value >> 8);
}

constexpr int
functorArity(std::int64_t fun_value)
{
    return static_cast<int>(fun_value & 0xff);
}

/** Printable tag mnemonic. */
const char *tagName(Tag tag);

/**
 * Data-memory layout (word addresses). The separate areas mirror the
 * WAM/BAM execution model: heap, local (environment + choice-point)
 * stack, trail and push-down list.
 */
struct Layout
{
    static constexpr std::int64_t kHeapBase = 0x00001000;
    static constexpr std::int64_t kHeapEnd = 0x00400000;
    static constexpr std::int64_t kStackBase = 0x00400000;
    static constexpr std::int64_t kStackEnd = 0x00500000;
    static constexpr std::int64_t kTrailBase = 0x00500000;
    static constexpr std::int64_t kTrailEnd = 0x00580000;
    static constexpr std::int64_t kPdlBase = 0x00580000;
    static constexpr std::int64_t kPdlEnd = 0x005C0000;
    static constexpr std::int64_t kMemWords = 0x005C0000;
};

/**
 * Virtual-register conventions. The compiler works with an unbounded
 * virtual register file; the first few indices are the abstract
 * machine's global state registers, then the argument registers, then
 * per-procedure temporaries.
 */
struct Regs
{
    static constexpr int kH = 0;   ///< heap top
    static constexpr int kE = 1;   ///< current environment frame
    static constexpr int kB = 2;   ///< current choice-point frame
    static constexpr int kTr = 3;  ///< trail top
    static constexpr int kPdl = 4; ///< push-down-list top
    static constexpr int kCp = 5;  ///< continuation (return address)
    static constexpr int kHb = 6;  ///< heap mark of current choice point
    static constexpr int kRr = 7;  ///< link register for runtime calls
    static constexpr int kU0 = 8;  ///< runtime result (unify: 1/0)
    static constexpr int kU1 = 9;  ///< runtime argument 1
    static constexpr int kU2 = 10; ///< runtime argument 2
    static constexpr int kA0 = 11; ///< first goal-argument register
    static constexpr int kMaxArgs = 13;
    static constexpr int kT0 = kA0 + kMaxArgs; ///< first temporary

    static constexpr int
    arg(int i)
    {
        return kA0 + i;
    }

    /** Is @p r one of the global state registers? */
    static constexpr bool
    isGlobal(int r)
    {
        return r >= kH && r <= kHb;
    }
};

/**
 * Choice-point frame layout (offsets from B, frame grows upward):
 * prevB, retry address, saved H, saved TR, saved E, saved CP, arg
 * count, then the saved argument registers.
 */
struct ChoiceFrame
{
    static constexpr int kPrevB = 0;
    static constexpr int kRetry = 1;
    static constexpr int kSavedH = 2;
    static constexpr int kSavedTr = 3;
    static constexpr int kSavedE = 4;
    static constexpr int kSavedCp = 5;
    static constexpr int kNumArgs = 6;
    static constexpr int kArgs = 7;
};

/**
 * Environment frame layout (offsets from E): previous E, saved CP,
 * number of permanent slots, then the slots.
 */
struct EnvFrame
{
    static constexpr int kPrevE = 0;
    static constexpr int kSavedCp = 1;
    static constexpr int kNumPerms = 2;
    static constexpr int kPerms = 3;
};

} // namespace symbol::bam

#endif // SYMBOL_BAM_WORD_HH
