#include "bam/serialize.hh"

#include <algorithm>

namespace symbol::bam
{

using serialize::DecodeError;
using serialize::Reader;
using serialize::Writer;

namespace
{

void
encodeOperand(Writer &w, const Operand &o)
{
    w.u8(static_cast<std::uint8_t>(o.kind));
    switch (o.kind) {
    case Operand::Kind::None:
        break;
    case Operand::Kind::Reg:
        w.vi(o.reg);
        break;
    case Operand::Kind::Imm:
        w.fixed64(o.imm);
        break;
    case Operand::Kind::Lab:
        w.vi(o.label);
        break;
    }
}

Operand
decodeOperand(Reader &r)
{
    std::uint8_t kind = r.u8();
    Operand o;
    switch (kind) {
    case static_cast<std::uint8_t>(Operand::Kind::None):
        break;
    case static_cast<std::uint8_t>(Operand::Kind::Reg):
        o.kind = Operand::Kind::Reg;
        o.reg = static_cast<int>(r.vi());
        break;
    case static_cast<std::uint8_t>(Operand::Kind::Imm):
        o.kind = Operand::Kind::Imm;
        o.imm = r.fixed64();
        break;
    case static_cast<std::uint8_t>(Operand::Kind::Lab):
        o.kind = Operand::Kind::Lab;
        o.label = static_cast<int>(r.vi());
        break;
    default:
        throw DecodeError("bad operand kind");
    }
    return o;
}

template <class E>
E
decodeEnum(Reader &r, std::uint8_t last, const char *what)
{
    std::uint8_t v = r.u8();
    if (v > last)
        throw DecodeError(std::string("bad ") + what);
    return static_cast<E>(v);
}

} // namespace

void
encode(Writer &w, const Module &module)
{
    w.vu(module.code.size());
    for (const Instr &i : module.code) {
        w.u8(static_cast<std::uint8_t>(i.op));
        w.u8(static_cast<std::uint8_t>(i.cond));
        w.u8(static_cast<std::uint8_t>(i.alu));
        w.u8(static_cast<std::uint8_t>(i.tag));
        encodeOperand(w, i.a);
        encodeOperand(w, i.b);
        encodeOperand(w, i.c);
        w.vi(i.off);
        for (int lab : i.labs)
            w.vi(lab);
        w.b(i.fresh);
        w.str(i.comment);
    }
    w.vi(module.numLabels);
    w.vu(module.procEntry.size());
    // Deterministic file bytes: emit the map in sorted order.
    {
        std::vector<std::pair<std::string, int>> entries(
            module.procEntry.begin(), module.procEntry.end());
        std::sort(entries.begin(), entries.end());
        for (const auto &[name, label] : entries) {
            w.str(name);
            w.vi(label);
        }
    }
    w.vi(module.entryLabel);
    w.vi(module.failLabel);
    w.vi(module.numRegs);
}

Module
decodeModule(Reader &r, Interner &interner)
{
    Module m(interner);
    std::size_t n = r.count(1);
    m.code.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        Instr i;
        i.op = decodeEnum<Op>(
            r, static_cast<std::uint8_t>(Op::Nop), "bam opcode");
        i.cond = decodeEnum<Cond>(
            r, static_cast<std::uint8_t>(Cond::Ge), "condition");
        i.alu = decodeEnum<AluOp>(
            r, static_cast<std::uint8_t>(AluOp::Sra), "alu op");
        i.tag = decodeEnum<Tag>(r, kNumTags - 1, "tag");
        i.a = decodeOperand(r);
        i.b = decodeOperand(r);
        i.c = decodeOperand(r);
        i.off = static_cast<int>(r.vi());
        for (int &lab : i.labs)
            lab = static_cast<int>(r.vi());
        i.fresh = r.b();
        i.comment = r.str();
        m.code.push_back(std::move(i));
    }
    m.numLabels = static_cast<int>(r.vi());
    std::size_t procs = r.count(2);
    for (std::size_t k = 0; k < procs; ++k) {
        std::string name = r.str();
        int label = static_cast<int>(r.vi());
        m.procEntry.emplace(std::move(name), label);
    }
    m.entryLabel = static_cast<int>(r.vi());
    m.failLabel = static_cast<int>(r.vi());
    m.numRegs = static_cast<int>(r.vi());
    return m;
}

} // namespace symbol::bam
