#include "bam/instr.hh"

#include "support/text.hh"

namespace symbol::bam
{

namespace
{

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Le: return "le";
      case Cond::Gt: return "gt";
      case Cond::Ge: return "ge";
    }
    return "?";
}

const char *
aluName(AluOp op)
{
    switch (op) {
      case AluOp::Add: return "add";
      case AluOp::Sub: return "sub";
      case AluOp::Mul: return "mul";
      case AluOp::Div: return "div";
      case AluOp::Mod: return "mod";
      case AluOp::And: return "and";
      case AluOp::Or: return "or";
      case AluOp::Xor: return "xor";
      case AluOp::Sll: return "sll";
      case AluOp::Sra: return "sra";
    }
    return "?";
}

std::string
regName(int r)
{
    using R = Regs;
    switch (r) {
      case R::kH: return "H";
      case R::kE: return "E";
      case R::kB: return "B";
      case R::kTr: return "TR";
      case R::kPdl: return "PDL";
      case R::kCp: return "CP";
      case R::kHb: return "HB";
      case R::kRr: return "RR";
      case R::kU0: return "U0";
      case R::kU1: return "U1";
      case R::kU2: return "U2";
      default:
        break;
    }
    if (r >= R::kA0 && r < R::kA0 + R::kMaxArgs)
        return strprintf("a%d", r - R::kA0);
    return strprintf("t%d", r - R::kT0);
}

std::string
operandStr(const Module &m, const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::None:
        return "_";
      case Operand::Kind::Reg:
        return regName(o.reg);
      case Operand::Kind::Lab:
        return strprintf("L%d", o.label);
      case Operand::Kind::Imm: {
        Tag t = wordTag(o.imm);
        std::int64_t v = wordVal(o.imm);
        switch (t) {
          case Tag::Atm:
            if (m.interner && m.interner->valid(
                    static_cast<AtomId>(v)))
                return "#" + m.interner->name(static_cast<AtomId>(v));
            return strprintf("#atm:%lld", static_cast<long long>(v));
          case Tag::Int:
            return strprintf("#%lld", static_cast<long long>(v));
          case Tag::Fun: {
            AtomId a = functorAtom(v);
            std::string name =
                m.interner && m.interner->valid(a)
                    ? m.interner->name(a)
                    : strprintf("f%d", a);
            return strprintf("#%s/%d", name.c_str(), functorArity(v));
          }
          case Tag::Cod:
            return strprintf("#L%lld", static_cast<long long>(v));
          default:
            return strprintf("#%s:%lld", tagName(t),
                             static_cast<long long>(v));
        }
      }
    }
    return "?";
}

} // namespace

std::string
print(const Module &m, const Instr &i)
{
    auto a = [&] { return operandStr(m, i.a); };
    auto b = [&] { return operandStr(m, i.b); };
    auto c = [&] { return operandStr(m, i.c); };
    auto lab = [&](int k) { return strprintf("L%d", i.labs[k]); };

    switch (i.op) {
      case Op::Procedure:
        return strprintf("procedure %s:  (L%d)", i.comment.c_str(),
                         i.labs[0]);
      case Op::Label:
        return strprintf("L%d:", i.labs[0]);
      case Op::Jump:
        return "    jump " + lab(0);
      case Op::JumpInd:
        return "    jump_ind " + a();
      case Op::Call:
        return "    call " + lab(0) +
               (i.comment.empty() ? "" : "  % " + i.comment);
      case Op::Return:
        return "    return";
      case Op::Halt:
        return "    halt";
      case Op::SwitchTag:
        return strprintf(
            "    switch_tag %s [ref:%s atm:%s int:%s lst:%s str:%s]",
            a().c_str(), lab(0).c_str(), lab(1).c_str(), lab(2).c_str(),
            lab(3).c_str(), lab(4).c_str());
      case Op::TestTag:
        return strprintf("    test_tag.%s %s, %s -> %s",
                         condName(i.cond), a().c_str(), tagName(i.tag),
                         lab(0).c_str());
      case Op::CmpBranch:
        return strprintf("    cmp.%s %s, %s -> %s", condName(i.cond),
                         a().c_str(), b().c_str(), lab(0).c_str());
      case Op::EqualBranch:
        return strprintf("    equal.%s %s, %s -> %s", condName(i.cond),
                         a().c_str(), b().c_str(), lab(0).c_str());
      case Op::Deref:
        return "    deref " + a() + " -> " + b();
      case Op::Trail:
        return "    trail " + a();
      case Op::Bind:
        return "    bind [" + a() + "] <- " + b();
      case Op::Allocate:
        return strprintf("    allocate %d", i.off);
      case Op::Deallocate:
        return "    deallocate";
      case Op::Try:
        return strprintf("    try n=%d retry=%s", i.off,
                         lab(0).c_str());
      case Op::Retry:
        return strprintf("    retry n=%d next=%s", i.off,
                         lab(0).c_str());
      case Op::Trust:
        return strprintf("    trust n=%d", i.off);
      case Op::Cut:
        return "    cut " + a();
      case Op::Fail:
        return "    fail";
      case Op::Move:
        return "    move " + a() + " -> " + b();
      case Op::Ld:
        return strprintf("    ld %s <- [%s%+d]", b().c_str(),
                         a().c_str(), i.off);
      case Op::St:
        return strprintf("    st [%s%+d] <- %s", a().c_str(), i.off,
                         b().c_str());
      case Op::Arith:
        return strprintf("    %s %s, %s -> %s", aluName(i.alu),
                         a().c_str(), b().c_str(), c().c_str());
      case Op::MkTag:
        return strprintf("    mktag.%s %s -> %s", tagName(i.tag),
                         a().c_str(), b().c_str());
      case Op::GetTag:
        return "    gettag " + a() + " -> " + b();
      case Op::Out:
        return "    out " + a();
      case Op::Nop:
        return "    nop";
    }
    return "    ?";
}

std::string
print(const Module &m)
{
    std::string out;
    for (const Instr &i : m.code) {
        out += print(m, i);
        out += '\n';
    }
    return out;
}

std::vector<std::string>
verify(const Module &m)
{
    std::vector<std::string> problems;
    std::vector<int> defs(static_cast<std::size_t>(m.numLabels), 0);

    auto note = [&](const std::string &msg) { problems.push_back(msg); };

    auto checkLab = [&](int idx, int lab, bool required) {
        if (lab < 0) {
            if (required)
                note(strprintf("instr %d: missing label operand", idx));
            return;
        }
        if (lab >= m.numLabels)
            note(strprintf("instr %d: label L%d never allocated", idx,
                           lab));
    };

    for (std::size_t k = 0; k < m.code.size(); ++k) {
        const Instr &i = m.code[k];
        int idx = static_cast<int>(k);
        switch (i.op) {
          case Op::Procedure:
          case Op::Label:
            checkLab(idx, i.labs[0], true);
            if (i.labs[0] >= 0 && i.labs[0] < m.numLabels)
                ++defs[static_cast<std::size_t>(i.labs[0])];
            break;
          case Op::Jump:
          case Op::Call:
          case Op::Try:
          case Op::Retry:
          case Op::TestTag:
          case Op::CmpBranch:
          case Op::EqualBranch:
            checkLab(idx, i.labs[0], true);
            break;
          case Op::SwitchTag:
            for (int w = 0; w < kSwitchWays; ++w)
                checkLab(idx, i.labs[w], true);
            if (!i.a.isReg())
                note(strprintf("instr %d: switch_tag needs reg", idx));
            break;
          case Op::Ld:
            if (!i.a.isReg() || !i.b.isReg())
                note(strprintf("instr %d: ld needs two regs", idx));
            break;
          case Op::St:
            if (!i.a.isReg() || i.b.isNone())
                note(strprintf("instr %d: st needs base and source",
                               idx));
            break;
          case Op::Move:
          case Op::Deref:
          case Op::MkTag:
          case Op::GetTag:
            if (i.a.isNone() || !i.b.isReg())
                note(strprintf("instr %d: needs source and dest reg",
                               idx));
            break;
          case Op::Arith:
            if (i.a.isNone() || i.b.isNone() || !i.c.isReg())
                note(strprintf("instr %d: arith needs a, b, dest",
                               idx));
            break;
          case Op::Bind:
            if (!i.a.isReg() || i.b.isNone())
                note(strprintf("instr %d: bind needs cell reg + value",
                               idx));
            break;
          default:
            break;
        }
    }

    // Every used label must be defined exactly once.
    for (std::size_t k = 0; k < m.code.size(); ++k) {
        const Instr &i = m.code[k];
        for (int w = 0; w < kSwitchWays; ++w) {
            int lab = i.labs[w];
            bool is_def = i.op == Op::Label || i.op == Op::Procedure;
            if (lab >= 0 && lab < m.numLabels && !is_def &&
                defs[static_cast<std::size_t>(lab)] != 1) {
                note(strprintf(
                    "instr %d: label L%d defined %d times",
                    static_cast<int>(k), lab,
                    defs[static_cast<std::size_t>(lab)]));
            }
        }
    }
    return problems;
}

} // namespace symbol::bam
