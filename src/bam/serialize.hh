/**
 * @file
 * Binary encode/decode of the BAM intermediate representation for the
 * persistent artefact store (see serialize/container.hh for the file
 * format and version policy).
 */

#ifndef SYMBOL_BAM_SERIALIZE_HH
#define SYMBOL_BAM_SERIALIZE_HH

#include "bam/instr.hh"
#include "serialize/codec.hh"

namespace symbol::bam
{

void encode(serialize::Writer &w, const Module &module);

/**
 * Decode a Module bound to @p interner (which must be the table the
 * module was encoded with — the store round-trips them together).
 * Throws serialize::DecodeError on malformed input.
 */
Module decodeModule(serialize::Reader &r, Interner &interner);

} // namespace symbol::bam

#endif // SYMBOL_BAM_SERIALIZE_HH
