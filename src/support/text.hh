/**
 * @file
 * Small text-formatting helpers used by printers and reports.
 */

#ifndef SYMBOL_SUPPORT_TEXT_HH
#define SYMBOL_SUPPORT_TEXT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace symbol
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/**
 * Render a plain-text table: first row is the header, columns are
 * auto-sized. Used by the bench harnesses to print paper tables.
 */
std::string renderTable(const std::vector<std::vector<std::string>> &rows);

/**
 * Render a horizontal ASCII bar chart line: a label, a bar scaled to
 * @p frac of @p width, and a value string.
 */
std::string barLine(const std::string &label, double frac, int width,
                    const std::string &value);

} // namespace symbol

#endif // SYMBOL_SUPPORT_TEXT_HH
