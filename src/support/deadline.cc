#include "support/deadline.hh"

namespace symbol::support
{

namespace
{

/** The calling thread's active deadline; null = unlimited. */
thread_local const Deadline *tlsDeadline = nullptr;

} // namespace

const Deadline *
currentDeadline()
{
    return tlsDeadline;
}

void
checkDeadline(const char *where)
{
    const Deadline *d = tlsDeadline;
    if (d && d->expired())
        throw DeadlineExceeded(where);
}

DeadlineScope::DeadlineScope(const Deadline &d) : prev_(tlsDeadline)
{
    tlsDeadline = &d;
}

DeadlineScope::~DeadlineScope()
{
    tlsDeadline = prev_;
}

} // namespace symbol::support
