/**
 * @file
 * A fixed-size thread pool with work-helping futures — the first
 * concurrency primitive of the toolchain, built for the parallel
 * evaluation driver (suite::EvalDriver).
 *
 * Design points:
 *  - Tasks are arbitrary callables; submit() returns a typed Future
 *    whose get() rethrows any exception the task raised.
 *  - Future::get() *helps*: while its task is not done it pops and
 *    executes other queued tasks. A task may therefore submit
 *    sub-tasks and wait on them without deadlocking, even on a pool
 *    of size 1 — nested submission degrades gracefully to direct
 *    execution.
 *  - A pool of size 1 executes tasks strictly in submission order,
 *    so results are identical to direct sequential execution; this
 *    is what makes jobs=1 the determinism reference of the driver.
 *
 * The pool deliberately has no task priorities, cancellation or
 * work-stealing deques: evaluation tasks are coarse (whole pipeline
 * stages), so a single FIFO queue under one mutex is both simple to
 * reason about under TSAN and nowhere near contention-bound.
 */

#ifndef SYMBOL_SUPPORT_THREADPOOL_HH
#define SYMBOL_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace symbol::support
{

namespace detail
{

/** Shared completion state of one submitted task. */
struct TaskStateBase
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

template <class T> struct TaskState : TaskStateBase
{
    std::optional<T> value;
};

template <> struct TaskState<void> : TaskStateBase
{
};

} // namespace detail

class ThreadPool
{
  public:
    /** Handle to a submitted task's eventual result. */
    template <class T> class Future
    {
      public:
        Future() = default;

        /** Whether this handle refers to a task. */
        bool valid() const { return st_ != nullptr; }

        /**
         * Block until the task completed, executing other queued
         * tasks of the pool while waiting (so nested waits make
         * progress instead of deadlocking). Rethrows the task's
         * exception, if any. May be called once.
         */
        T
        get()
        {
            pool_->waitHelp(*st_);
            if (st_->error)
                std::rethrow_exception(st_->error);
            if constexpr (!std::is_void_v<T>)
                return std::move(*st_->value);
        }

      private:
        friend class ThreadPool;
        Future(std::shared_ptr<detail::TaskState<T>> st,
               ThreadPool *pool)
            : st_(std::move(st)), pool_(pool)
        {
        }

        std::shared_ptr<detail::TaskState<T>> st_;
        ThreadPool *pool_ = nullptr;
    };

    /** @p threads worker threads; 0 selects defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Pool width used when none is requested: the SYMBOL_JOBS
     * environment variable if set to a positive integer, else the
     * hardware concurrency (at least 1).
     */
    static unsigned defaultThreads();

    /** Enqueue @p fn; returns a Future for its result. */
    template <class F>
    auto
    submit(F &&fn) -> Future<std::invoke_result_t<std::decay_t<F> &>>
    {
        using R = std::invoke_result_t<std::decay_t<F> &>;
        auto st = std::make_shared<detail::TaskState<R>>();
        enqueue([st, f = std::forward<F>(fn)]() mutable {
            try {
                if constexpr (std::is_void_v<R>)
                    f();
                else
                    st->value.emplace(f());
            } catch (...) {
                st->error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lk(st->m);
                st->done = true;
            }
            st->cv.notify_all();
        });
        return Future<R>(std::move(st), this);
    }

  private:
    void enqueue(std::function<void()> job);
    /** Run one queued task on the calling thread, if any. */
    bool runOne();
    /** Help run queued tasks until @p st completes. */
    void waitHelp(detail::TaskStateBase &st);
    void workerLoop();

    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Run fn(i) for every i in [0, n) across @p pool, blocking until all
 * completed; the calling thread helps. The first exception (lowest
 * index) is rethrown after every task finished.
 */
template <class F>
void
parallelFor(ThreadPool &pool, std::size_t n, F fn)
{
    std::vector<ThreadPool::Future<void>> fs;
    fs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        fs.push_back(pool.submit([fn, i] { fn(i); }));
    std::exception_ptr first;
    for (auto &f : fs) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace symbol::support

#endif // SYMBOL_SUPPORT_THREADPOOL_HH
