/**
 * @file
 * Error-reporting primitives shared by every SYMBOL component.
 *
 * Two failure classes are distinguished, following common simulator
 * practice:
 *  - CompileError / RuntimeError: the *input* (a Prolog program, a
 *    machine description) is at fault. These are ordinary exceptions a
 *    driver may catch and report.
 *  - panic(): an internal invariant of the toolchain itself is broken.
 */

#ifndef SYMBOL_SUPPORT_DIAGNOSTICS_HH
#define SYMBOL_SUPPORT_DIAGNOSTICS_HH

#include <stdexcept>
#include <string>

namespace symbol
{

/** A position inside a source text, for error messages. */
struct SourcePos
{
    int line = 0;
    int column = 0;

    /** Render as "line:column". */
    std::string str() const;
};

/** Raised when user input (Prolog source, configuration) is invalid. */
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(const std::string &msg);
    CompileError(const SourcePos &pos, const std::string &msg);
};

/** Raised when emulated code performs an illegal operation. */
class RuntimeError : public std::runtime_error
{
  public:
    explicit RuntimeError(const std::string &msg);
};

/**
 * Raised when a checking tool (the static IR analyzer of src/check,
 * the independent schedule verifier of src/verify) finds violations
 * in otherwise-processable input. Drivers distinguish it from plain
 * input/runtime failures: symbolc exits 2 for violations, 1 for
 * everything else that goes wrong.
 */
class ViolationError : public RuntimeError
{
  public:
    explicit ViolationError(const std::string &msg);
};

/**
 * Abort with a message; used for violated internal invariants only.
 * Never returns.
 */
[[noreturn]] void panic(const std::string &msg);

/** panic() unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace symbol

#endif // SYMBOL_SUPPORT_DIAGNOSTICS_HH
