/**
 * @file
 * Cooperative per-request deadlines.
 *
 * A Deadline is a wall-clock budget attached to one unit of work (a
 * symbold request, a bounded sweep). It is enforced *cooperatively*:
 * long-running code calls checkDeadline() at natural boundaries —
 * the pass manager does so between pipeline passes — and the check
 * throws DeadlineExceeded once the budget has run out. Nothing is
 * ever interrupted mid-pass, so every artefact that exists when the
 * exception unwinds is complete and consistent (the artefact store
 * and caches keep whatever finished).
 *
 * The active deadline is published per thread with a DeadlineScope.
 * Work that hops threads (the server dispatching onto the
 * ThreadPool) re-establishes the scope inside the submitted task;
 * threads with no scope run unlimited, so batch tools are
 * unaffected.
 */

#ifndef SYMBOL_SUPPORT_DEADLINE_HH
#define SYMBOL_SUPPORT_DEADLINE_HH

#include <chrono>
#include <cstdint>
#include <limits>

#include "support/diagnostics.hh"

namespace symbol::support
{

/** Thrown by checkDeadline() when the budget has run out. The
 *  message names the boundary that noticed, for diagnosis of
 *  which stage ate the budget. */
class DeadlineExceeded : public RuntimeError
{
  public:
    explicit DeadlineExceeded(const std::string &where)
        : RuntimeError("deadline exceeded at " + where)
    {
    }
};

/** A point in time work must not run past; default: unlimited. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Unlimited (never expires). */
    Deadline() = default;

    /** A budget of @p ms milliseconds from now; 0 = unlimited. */
    static Deadline
    afterMillis(std::uint64_t ms)
    {
        Deadline d;
        if (ms > 0) {
            d.limited_ = true;
            d.at_ = Clock::now() + std::chrono::milliseconds(ms);
        }
        return d;
    }

    bool limited() const { return limited_; }

    bool
    expired() const
    {
        return limited_ && Clock::now() >= at_;
    }

    /** Seconds left (0 when expired; +inf when unlimited). */
    double
    remainingSeconds() const
    {
        if (!limited_)
            return std::numeric_limits<double>::infinity();
        double s = std::chrono::duration<double>(at_ - Clock::now())
                       .count();
        return s > 0.0 ? s : 0.0;
    }

  private:
    bool limited_ = false;
    Clock::time_point at_{};
};

/** The calling thread's active deadline (null = unlimited). */
const Deadline *currentDeadline();

/**
 * Cooperative checkpoint: throws DeadlineExceeded(@p where) if the
 * calling thread's active deadline has passed. No-op (and cheap —
 * one thread-local read) when no deadline is in scope.
 */
void checkDeadline(const char *where);

/**
 * RAII: publish @p d as the calling thread's deadline for the
 * scope's lifetime; nests (the previous deadline is restored).
 */
class DeadlineScope
{
  public:
    explicit DeadlineScope(const Deadline &d);
    ~DeadlineScope();
    DeadlineScope(const DeadlineScope &) = delete;
    DeadlineScope &operator=(const DeadlineScope &) = delete;

  private:
    const Deadline *prev_;
};

} // namespace symbol::support

#endif // SYMBOL_SUPPORT_DEADLINE_HH
