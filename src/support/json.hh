/**
 * @file
 * Minimal JSON reader/writer for the toolchain's machine-readable
 * reports (symbolc --stats-json) and their tests. Supports the full
 * JSON value model minus \uXXXX escapes; numbers are held as double
 * plus the exact integer when representable.
 */

#ifndef SYMBOL_SUPPORT_JSON_HH
#define SYMBOL_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace symbol::json
{

class Value;

using Array = std::vector<Value>;
/** std::map: deterministic member order in dumps. */
using Object = std::map<std::string, Value>;

/** One JSON value (tagged union). */
class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        Null, Bool, Number, String, Array, Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(std::int64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n)),
          int_(n), isInt_(true)
    {
    }
    Value(std::uint64_t n)
        : Value(static_cast<std::int64_t>(n))
    {
    }
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a);
    Value(Object o);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }

    /** Typed accessors; throw RuntimeError on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** The integer value; throws if not exactly integral. */
    std::int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member (throws if absent or not an object). */
    const Value &at(const std::string &key) const;
    /** Does this object contain @p key? */
    bool has(const std::string &key) const;

    /** Serialize (no insignificant whitespace). */
    std::string dump() const;

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool isInt_ = false;
    std::string str_;
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

/** Parse @p text; throws RuntimeError with position on any error
 *  (trailing garbage included). */
Value parse(const std::string &text);

/** JSON string escaping (quotes not included). */
std::string escape(const std::string &s);

} // namespace symbol::json

#endif // SYMBOL_SUPPORT_JSON_HH
