#include "support/diagnostics.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace symbol
{

std::string
SourcePos::str() const
{
    std::ostringstream os;
    os << line << ':' << column;
    return os.str();
}

CompileError::CompileError(const std::string &msg)
    : std::runtime_error(msg)
{
}

CompileError::CompileError(const SourcePos &pos, const std::string &msg)
    : std::runtime_error(pos.str() + ": " + msg)
{
}

RuntimeError::RuntimeError(const std::string &msg)
    : std::runtime_error(msg)
{
}

ViolationError::ViolationError(const std::string &msg)
    : RuntimeError(msg)
{
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace symbol
