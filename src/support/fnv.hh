/**
 * @file
 * The toolchain's one FNV-1a implementation.
 *
 * FNV-1a 64-bit is used for every content hash in the toolchain: the
 * workload-cache content keys, the artefact-store file names and the
 * container section checksums. It used to be implemented three times
 * (suite/cache.cc, serialize/codec.cc and inline in the store); this
 * header is now the single definition everyone shares, with the
 * constants exposed so tests can pin the exact function.
 */

#ifndef SYMBOL_SUPPORT_FNV_HH
#define SYMBOL_SUPPORT_FNV_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace symbol::support
{

/** FNV-1a 64-bit offset basis (the hash of the empty string). */
constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/** FNV-1a 64-bit prime. */
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/**
 * FNV-1a 64-bit hash over @p n bytes, continuing from @p seed.
 * Chaining property: fnv1a(b, fnv1a(a)) == fnv1a(a + b).
 */
inline std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t seed = kFnvOffsetBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t k = 0; k < n; ++k) {
        h ^= p[k];
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a 64-bit hash of a string. */
inline std::uint64_t
fnv1a(std::string_view s, std::uint64_t seed = kFnvOffsetBasis)
{
    return fnv1a(s.data(), s.size(), seed);
}

} // namespace symbol::support

#endif // SYMBOL_SUPPORT_FNV_HH
