#include "support/text.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace symbol
{

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
renderTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }
    std::string out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto &row = rows[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            // First column left-aligned (names), the rest right-aligned
            // (numbers), matching the layout of the paper's tables.
            out += (i == 0 ? padRight(row[i], widths[i])
                           : padLeft(row[i], widths[i]));
            if (i + 1 < row.size())
                out += "  ";
        }
        out += '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t i = 0; i < widths.size(); ++i)
                total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
            out += std::string(total, '-');
            out += '\n';
        }
    }
    return out;
}

std::string
barLine(const std::string &label, double frac, int width,
        const std::string &value)
{
    frac = std::clamp(frac, 0.0, 1.0);
    int n = static_cast<int>(frac * width + 0.5);
    std::string out = padRight(label, 14) + "|";
    out += std::string(static_cast<std::size_t>(n), '#');
    out += std::string(static_cast<std::size_t>(width - n), ' ');
    out += "| " + value;
    return out;
}

} // namespace symbol
