/**
 * @file
 * String interning for Prolog atoms and functor names.
 *
 * Every atom that appears anywhere in the toolchain is mapped to a
 * dense small integer so that emulated tagged words can carry atoms as
 * plain indices and comparisons are O(1). A single Interner instance is
 * owned by the front end and threaded through the pipeline.
 */

#ifndef SYMBOL_SUPPORT_INTERNER_HH
#define SYMBOL_SUPPORT_INTERNER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace symbol
{

/** Dense identifier of an interned string. */
using AtomId = std::int32_t;

/** Bidirectional string <-> dense-id table. */
class Interner
{
  public:
    Interner();

    /** Intern @p name, returning its stable id (idempotent). */
    AtomId intern(const std::string &name);

    /** Look up an existing id, or -1 if never interned. */
    AtomId find(const std::string &name) const;

    /** The text of an id. The id must be valid. */
    const std::string &name(AtomId id) const;

    /** Whether @p id names an interned atom. */
    bool valid(AtomId id) const;

    /** Number of interned strings. */
    std::size_t size() const { return names_.size(); }

    /** @name Atoms pre-interned by the constructor. */
    /** @{ */
    AtomId nilAtom() const { return nilAtom_; }
    AtomId trueAtom() const { return trueAtom_; }
    AtomId failAtom() const { return failAtom_; }
    /** @} */

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, AtomId> ids_;
    AtomId nilAtom_;
    AtomId trueAtom_;
    AtomId failAtom_;
};

} // namespace symbol

#endif // SYMBOL_SUPPORT_INTERNER_HH
