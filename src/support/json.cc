#include "support/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::json
{

Value::Value(Array a)
    : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a)))
{
}

Value::Value(Object o)
    : kind_(Kind::Object),
      obj_(std::make_shared<Object>(std::move(o)))
{
}

namespace
{

[[noreturn]] void
kindError(const char *want, Value::Kind got)
{
    static const char *kNames[] = {"null",   "bool",  "number",
                                   "string", "array", "object"};
    throw RuntimeError(strprintf("json: expected %s, got %s", want,
                                 kNames[static_cast<int>(got)]));
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        kindError("bool", kind_);
    return bool_;
}

double
Value::asDouble() const
{
    if (kind_ != Kind::Number)
        kindError("number", kind_);
    return num_;
}

std::int64_t
Value::asInt() const
{
    if (kind_ != Kind::Number)
        kindError("number", kind_);
    if (isInt_)
        return int_;
    double r = std::floor(num_);
    if (r != num_)
        throw RuntimeError("json: number is not integral");
    return static_cast<std::int64_t>(r);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        kindError("string", kind_);
    return str_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        kindError("array", kind_);
    return *arr_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        kindError("object", kind_);
    return *obj_;
}

const Value &
Value::at(const std::string &key) const
{
    const Object &o = asObject();
    auto it = o.find(key);
    if (it == o.end())
        throw RuntimeError("json: missing member '" + key + "'");
    return it->second;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object &&
           obj_->find(key) != obj_->end();
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
Value::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Number:
        if (isInt_)
            return strprintf("%lld",
                             static_cast<long long>(int_));
        return strprintf("%.17g", num_);
      case Kind::String:
        return "\"" + escape(str_) + "\"";
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < arr_->size(); ++i) {
            if (i)
                out += ",";
            out += (*arr_)[i].dump();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &[k, v] : *obj_) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + escape(k) + "\":" + v.dump();
        }
        return out + "}";
      }
    }
    return "null";
}

// --- Parser ---------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw RuntimeError(strprintf("json: %s at offset %zu",
                                     why.c_str(), pos_));
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strprintf("expected '%c'", c));
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (s_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            if (consumeWord("true"))
                return Value(true);
            fail("bad literal");
          case 'f':
            if (consumeWord("false"))
                return Value(false);
            fail("bad literal");
          case 'n':
            if (consumeWord("null"))
                return Value();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        std::string tok = s_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        errno = 0;
        char *end = nullptr;
        if (tok.find('.') == std::string::npos &&
            tok.find('e') == std::string::npos &&
            tok.find('E') == std::string::npos) {
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (*end == '\0' && errno != ERANGE)
                return Value(static_cast<std::int64_t>(v));
        }
        errno = 0;
        double d = std::strtod(tok.c_str(), &end);
        if (*end != '\0' || errno == ERANGE)
            fail("bad number");
        return Value(d);
    }

    Value
    parseArray()
    {
        expect('[');
        Array a;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(a));
        }
        while (true) {
            a.push_back(parseValue());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                return Value(std::move(a));
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Object o;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(o));
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            o.emplace(std::move(key), parseValue());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                return Value(std::move(o));
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace symbol::json
