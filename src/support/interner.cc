#include "support/interner.hh"

#include "support/diagnostics.hh"

namespace symbol
{

Interner::Interner()
{
    nilAtom_ = intern("[]");
    trueAtom_ = intern("true");
    failAtom_ = intern("fail");
}

AtomId
Interner::intern(const std::string &name)
{
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    AtomId id = static_cast<AtomId>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
}

AtomId
Interner::find(const std::string &name) const
{
    auto it = ids_.find(name);
    return it == ids_.end() ? -1 : it->second;
}

const std::string &
Interner::name(AtomId id) const
{
    panicIf(!valid(id), "Interner::name: invalid atom id");
    return names_[static_cast<std::size_t>(id)];
}

bool
Interner::valid(AtomId id) const
{
    return id >= 0 && static_cast<std::size_t>(id) < names_.size();
}

} // namespace symbol
