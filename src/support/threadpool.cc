#include "support/threadpool.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace symbol::support
{

namespace
{

/** The pool the current thread is a worker of, if any. */
thread_local ThreadPool *tlsWorkerPool = nullptr;

/** Largest worker count SYMBOL_JOBS may request. */
constexpr long kMaxJobs = 1024;

} // namespace

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw ? hw : 1;
    const char *env = std::getenv("SYMBOL_JOBS");
    if (!env || *env == '\0')
        return fallback;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    // Reject rather than guess: trailing garbage ("4x"), overflow,
    // and non-positive counts all fall back to the hardware default
    // with a warning, instead of silently becoming 0 or huge.
    if (end == env || *end != '\0' || errno == ERANGE || v <= 0) {
        std::fprintf(stderr,
                     "[threadpool] ignoring invalid SYMBOL_JOBS=%s "
                     "(expected an integer in [1, %ld]); using %u\n",
                     env, kMaxJobs, fallback);
        return fallback;
    }
    if (v > kMaxJobs) {
        std::fprintf(stderr,
                     "[threadpool] clamping SYMBOL_JOBS=%s to %ld\n",
                     env, kMaxJobs);
        return static_cast<unsigned>(kMaxJobs);
    }
    return static_cast<unsigned>(v);
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned k = 0; k < threads; ++k)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

bool
ThreadPool::runOne()
{
    std::function<void()> job;
    {
        std::lock_guard<std::mutex> lk(m_);
        if (queue_.empty())
            return false;
        job = std::move(queue_.front());
        queue_.pop_front();
    }
    job();
    return true;
}

void
ThreadPool::waitHelp(detail::TaskStateBase &st)
{
    if (tlsWorkerPool != this) {
        // External waiter: block passively. Keeping outside threads
        // out of task execution preserves the size-1 guarantee that
        // every task runs on the single worker, in FIFO order —
        // observationally identical to direct sequential execution.
        std::unique_lock<std::mutex> lk(st.m);
        st.cv.wait(lk, [&] { return st.done; });
        return;
    }
    // A worker waiting for a task of its own pool: make progress on
    // the queue instead of blocking — the task we wait for may be
    // queued behind us, or may have submitted sub-tasks only we can
    // run. This is what makes nested submission deadlock-free.
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(st.m);
            if (st.done)
                return;
        }
        if (runOne())
            continue;
        std::unique_lock<std::mutex> lk(st.m);
        // Bounded wait: newly queued work would not signal st.cv, so
        // re-check the queue periodically rather than parking for
        // good. Completion signals arrive immediately via st.cv.
        st.cv.wait_for(lk, std::chrono::milliseconds(2),
                       [&] { return st.done; });
        if (st.done)
            return;
    }
}

void
ThreadPool::workerLoop()
{
    tlsWorkerPool = this;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk,
                     [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

} // namespace symbol::support
