/**
 * @file
 * Compacted very-long-instruction-word code.
 *
 * A VLIW program is a sequence of wide instructions; each wide
 * instruction bundles micro-operations that issue in the same cycle,
 * every one bound to a unit by the Bottom-Up-Greedy pass. Branch
 * targets are wide-instruction indices. When several branches share a
 * cycle, the earliest taken one wins — the multi-way branch priority
 * scheme of §5.1 ("the compiler includes bits in the instructions to
 * specify the priority of the branch operations").
 */

#ifndef SYMBOL_VLIW_CODE_HH
#define SYMBOL_VLIW_CODE_HH

#include <string>
#include <vector>

#include "intcode/instr.hh"

namespace symbol::vliw
{

/** One operation inside a wide instruction. */
struct MicroOp
{
    intcode::IInstr instr;
    /** Unit the op is bound to. */
    int unit = 0;
    /**
     * Provenance: index of the source instruction in the original
     * IntCode program (-1 for synthetic operations such as trace
     * exit jumps). Tail-duplicated compensation copies share the
     * orig of the instruction they duplicate.
     */
    int orig = -1;
    /**
     * Provenance: position of the op in its region's linearised
     * source sequence. Together with region boundaries this lets an
     * independent checker reconstruct the program order the
     * scheduler claims to have preserved (see verify::checkSchedule)
     * without trusting any scheduling decision.
     */
    int seq = -1;
};

/** One wide instruction (everything issues in the same cycle). */
struct WideInstr
{
    /** In priority order: branch priority follows position. */
    std::vector<MicroOp> ops;
};

/** A complete compacted program. */
struct Code
{
    std::vector<WideInstr> code;
    int entry = 0;
    int numRegs = 0;
    /**
     * First wide-instruction index of every scheduled region (trace
     * or basic block), in ascending order. A region spans from its
     * start to the next region's start (or the end of code). All
     * branch targets land on region starts.
     */
    std::vector<int> regionStart;
    const Interner *interner = nullptr;

    /** Total micro-operations. */
    std::size_t
    numOps() const
    {
        std::size_t n = 0;
        for (const WideInstr &w : code)
            n += w.ops.size();
        return n;
    }

    /** Listing for debugging. */
    std::string str() const;
};

} // namespace symbol::vliw

#endif // SYMBOL_VLIW_CODE_HH
