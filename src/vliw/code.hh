/**
 * @file
 * Compacted very-long-instruction-word code.
 *
 * A VLIW program is a sequence of wide instructions; each wide
 * instruction bundles micro-operations that issue in the same cycle,
 * every one bound to a unit by the Bottom-Up-Greedy pass. Branch
 * targets are wide-instruction indices. When several branches share a
 * cycle, the earliest taken one wins — the multi-way branch priority
 * scheme of §5.1 ("the compiler includes bits in the instructions to
 * specify the priority of the branch operations").
 */

#ifndef SYMBOL_VLIW_CODE_HH
#define SYMBOL_VLIW_CODE_HH

#include <string>
#include <vector>

#include "intcode/instr.hh"

namespace symbol::vliw
{

/** One operation inside a wide instruction. */
struct MicroOp
{
    intcode::IInstr instr;
    /** Unit the op is bound to. */
    int unit = 0;
};

/** One wide instruction (everything issues in the same cycle). */
struct WideInstr
{
    /** In priority order: branch priority follows position. */
    std::vector<MicroOp> ops;
};

/** A complete compacted program. */
struct Code
{
    std::vector<WideInstr> code;
    int entry = 0;
    int numRegs = 0;
    const Interner *interner = nullptr;

    /** Total micro-operations. */
    std::size_t
    numOps() const
    {
        std::size_t n = 0;
        for (const WideInstr &w : code)
            n += w.ops.size();
        return n;
    }

    /** Listing for debugging. */
    std::string str() const;
};

} // namespace symbol::vliw

#endif // SYMBOL_VLIW_CODE_HH
