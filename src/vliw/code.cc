#include "vliw/code.hh"

#include "support/text.hh"

namespace symbol::vliw
{

std::string
Code::str() const
{
    std::string out;
    intcode::Program helper;
    helper.interner = interner;
    for (std::size_t k = 0; k < code.size(); ++k) {
        out += strprintf("%6d: ", static_cast<int>(k));
        if (code[k].ops.empty()) {
            out += "(stall)\n";
            continue;
        }
        bool first = true;
        for (const MicroOp &m : code[k].ops) {
            if (!first)
                out += std::string(8, ' ');
            first = false;
            out += strprintf("u%d  %s\n", m.unit,
                             helper.str(m.instr).c_str());
        }
    }
    return out;
}

} // namespace symbol::vliw
