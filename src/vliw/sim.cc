#include "vliw/sim.hh"

#include <algorithm>

#include "emul/machine.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::vliw
{

using bam::Tag;
using intcode::IInstr;
using intcode::IOp;
using L = bam::Layout;

Machine::Machine(const Code &code, const machine::MachineConfig &cfg)
    : code_(code), config_(cfg),
      regs_(static_cast<std::size_t>(code.numRegs), 0),
      memory_(static_cast<std::size_t>(L::kMemWords), 0)
{
}

namespace
{

/** A register write waiting for its latency to elapse. */
struct Pending
{
    std::uint64_t due = 0;
    std::uint64_t issued = 0;
    Word value = 0;
    bool valid = false;
};

std::int64_t
valOf(Word w)
{
    return bam::wordVal(w);
}

} // namespace

const char *
simStatusName(SimStatus s)
{
    switch (s) {
      case SimStatus::Ok: return "ok";
      case SimStatus::MemFault: return "mem-fault";
      case SimStatus::BadPc: return "bad-pc";
      case SimStatus::CycleLimit: return "cycle-limit";
    }
    return "?";
}

SimResult
Machine::run(const SimOptions &opts)
{
    SimResult res;
    res.unitOps.assign(static_cast<std::size_t>(config_.numUnits),
                       0);
    std::vector<Pending> pending(regs_.size());
    // Registers with an in-flight write: the live set is tiny (a few
    // per issue width), so committing scans this list, not the whole
    // register file.
    std::vector<int> inflight;
    std::uint64_t now = 0;

    auto commitDue = [&]() {
        std::size_t keep = 0;
        for (std::size_t k = 0; k < inflight.size(); ++k) {
            std::size_t r = static_cast<std::size_t>(inflight[k]);
            if (pending[r].valid && pending[r].due <= now) {
                regs_[r] = pending[r].value;
                pending[r].valid = false;
            } else if (pending[r].valid) {
                inflight[keep++] = inflight[k];
            }
        }
        inflight.resize(keep);
    };
    auto readReg = [&](int r) {
        std::size_t sr = static_cast<std::size_t>(r);
        // A same-cycle write is the normal parallel-issue case (the
        // read sees the pre-cycle value); only an *earlier* write
        // whose latency has not elapsed is a scheduling violation.
        if (pending[sr].valid && pending[sr].due > now &&
            pending[sr].issued < now)
            ++res.latencyViolations;
        return regs_[sr];
    };
    auto writeReg = [&](int r, Word v, int latency) {
        std::size_t sr = static_cast<std::size_t>(r);
        if (pending[sr].valid)
            ++res.latencyViolations; // overlapping writes
        if (!pending[sr].valid)
            inflight.push_back(r);
        pending[sr].due = now + static_cast<std::uint64_t>(latency);
        pending[sr].issued = now;
        pending[sr].value = v;
        pending[sr].valid = true;
    };

    std::int64_t pc = code_.entry;

    while (true) {
        if (pc < 0 ||
            static_cast<std::size_t>(pc) >= code_.code.size()) {
            if (!opts.trapErrors)
                throw RuntimeError(strprintf(
                    "VLIW PC out of range: %lld",
                    static_cast<long long>(pc)));
            res.status = SimStatus::BadPc;
            break;
        }
        if (res.cycles > opts.maxCycles) {
            if (!opts.trapErrors)
                throw RuntimeError("VLIW cycle budget exhausted");
            res.status = SimStatus::CycleLimit;
            break;
        }

        commitDue();
        const WideInstr &w =
            code_.code[static_cast<std::size_t>(pc)];
        ++res.wideExecuted;

        // Phase 1: read all operands against pre-cycle state and
        // compute results; remember stores for phase 2.
        struct StoreReq
        {
            std::int64_t addr;
            Word value;
        };
        std::vector<StoreReq> stores;
        std::int64_t next = pc + 1;
        bool branched = false;
        bool halted = false;
        bool mem_busy = false;
        SimStatus fault = SimStatus::Ok;

        for (const MicroOp &m : w.ops) {
            if (fault != SimStatus::Ok)
                break;
            const IInstr &i = m.instr;
            ++res.opsExecuted;
            if (m.unit >= 0 &&
                m.unit < static_cast<int>(res.unitOps.size()))
                ++res.unitOps[static_cast<std::size_t>(m.unit)];
            else
                ++res.badUnitOps;
            Word a = i.ra >= 0 ? readReg(i.ra) : 0;
            Word b = i.useImm
                         ? i.imm
                         : (i.rb >= 0 ? readReg(i.rb) : 0);

            switch (i.op) {
              case IOp::Ld: {
                mem_busy = true;
                std::int64_t addr = valOf(a) + i.off;
                // Speculative loads never fault: out-of-range reads
                // return a junk word.
                Word v = (addr >= 0 && addr < L::kMemWords)
                             ? memory_[static_cast<std::size_t>(
                                   addr)]
                             : 0;
                writeReg(i.rd, v, config_.memLatency);
                break;
              }
              case IOp::St: {
                mem_busy = true;
                std::int64_t addr = valOf(a) + i.off;
                if (addr < 0 || addr >= L::kMemWords) {
                    if (!opts.trapErrors)
                        throw RuntimeError(strprintf(
                            "VLIW store out of range: %lld",
                            static_cast<long long>(addr)));
                    fault = SimStatus::MemFault;
                    break;
                }
                stores.push_back({addr, b});
                break;
              }
              case IOp::Add: case IOp::Sub: case IOp::Mul:
              case IOp::Div: case IOp::Mod: case IOp::And:
              case IOp::Or: case IOp::Xor: case IOp::Sll:
              case IOp::Sra: {
                std::int64_t x = valOf(a), y = valOf(b), v = 0;
                switch (i.op) {
                  case IOp::Add: v = x + y; break;
                  case IOp::Sub: v = x - y; break;
                  case IOp::Mul: v = x * y; break;
                  // Division never traps on the exposed datapath.
                  case IOp::Div: v = y ? x / y : 0; break;
                  case IOp::Mod: v = y ? x % y : 0; break;
                  case IOp::And: v = x & y; break;
                  case IOp::Or: v = x | y; break;
                  case IOp::Xor: v = x ^ y; break;
                  case IOp::Sll: v = x << (y & 31); break;
                  case IOp::Sra: v = x >> (y & 31); break;
                  default: break;
                }
                writeReg(i.rd, bam::makeWord(Tag::Int, v),
                         config_.aluLatency);
                break;
              }
              case IOp::Mov:
                writeReg(i.rd, a, config_.moveLatency);
                break;
              case IOp::Movi:
                writeReg(i.rd, i.imm, config_.moveLatency);
                break;
              case IOp::MkTag:
                writeReg(i.rd, bam::makeWord(i.tag, valOf(a)),
                         config_.aluLatency);
                break;
              case IOp::GetTag:
                writeReg(i.rd,
                         bam::makeWord(
                             Tag::Int,
                             static_cast<std::int64_t>(
                                 bam::wordTag(a))),
                         config_.aluLatency);
                break;
              case IOp::Out:
                output_.push_back(b);
                break;
              case IOp::Halt:
                halted = true;
                break;
              case IOp::Nop:
                break;
              default: {
                // Branches: the first taken one wins (priority).
                if (branched || halted)
                    break;
                bool taken = false;
                switch (i.op) {
                  case IOp::Beq: taken = a == b; break;
                  case IOp::Bne: taken = a != b; break;
                  case IOp::Blt: taken = valOf(a) < valOf(b); break;
                  case IOp::Ble: taken = valOf(a) <= valOf(b); break;
                  case IOp::Bgt: taken = valOf(a) > valOf(b); break;
                  case IOp::Bge: taken = valOf(a) >= valOf(b); break;
                  case IOp::BtagEq:
                    taken = bam::wordTag(a) == i.tag;
                    break;
                  case IOp::BtagNe:
                    taken = bam::wordTag(a) != i.tag;
                    break;
                  case IOp::Jmp:
                    taken = true;
                    break;
                  case IOp::Jmpi:
                    taken = true;
                    break;
                  default:
                    panic("unhandled VLIW op");
                }
                if (taken) {
                    branched = true;
                    next = i.op == IOp::Jmpi
                               ? valOf(a)
                               : i.target;
                }
                break;
              }
            }
        }

        // A faulting wide instruction ends the run before any of its
        // stores commit.
        if (fault != SimStatus::Ok) {
            res.status = fault;
            break;
        }

        // Phase 2: commit stores (after all loads read pre-state).
        for (const StoreReq &s : stores)
            memory_[static_cast<std::size_t>(s.addr)] = s.value;

        now += 1;
        res.cycles += 1;
        if (mem_busy)
            ++res.memBusyCycles;
        if (halted) {
            res.halted = true;
            break;
        }
        if (branched) {
            now += static_cast<std::uint64_t>(config_.branchPenalty);
            res.cycles +=
                static_cast<std::uint64_t>(config_.branchPenalty);
        }
        pc = next;
    }

    res.output = output_;
    return res;
}

std::string
Machine::decodeOutput() const
{
    return emul::decodeOutputStream(output_, code_.interner);
}

} // namespace symbol::vliw
