/**
 * @file
 * Binary encode/decode of compacted VLIW code. Stored per
 * machine-config fingerprint by the artefact store, so a warm run
 * skips global compaction while still simulating (the end-to-end
 * answer check stays in force).
 */

#ifndef SYMBOL_VLIW_SERIALIZE_HH
#define SYMBOL_VLIW_SERIALIZE_HH

#include "serialize/codec.hh"
#include "vliw/code.hh"

namespace symbol::vliw
{

void encode(serialize::Writer &w, const Code &code);

/** Decode a Code bound to @p interner (may be nullptr). Throws
 *  serialize::DecodeError on malformed input. */
Code decodeCode(serialize::Reader &r, const Interner *interner);

} // namespace symbol::vliw

#endif // SYMBOL_VLIW_SERIALIZE_HH
