/**
 * @file
 * Event-driven simulator for compacted VLIW code (§3.2, §4.5).
 *
 * Executes wide instructions with parallel-issue semantics: all
 * operand reads in a cycle see the pre-cycle machine state; register
 * results commit after their operation latency (there are no
 * interlocks — the schedule must respect latencies, and the
 * simulator counts violations); at most one branch takes effect per
 * cycle, the highest-priority (earliest-position) taken one, as in
 * the prototype's multi-way branch scheme (§5.1).
 *
 * Speculatively hoisted loads may compute wild addresses on paths
 * where they would not originally have executed; like the real
 * datapath (no MMU, untranslated 28-bit addresses), such loads return
 * a junk word instead of faulting. Stores are never speculated and
 * remain strictly bounds-checked.
 */

#ifndef SYMBOL_VLIW_SIM_HH
#define SYMBOL_VLIW_SIM_HH

#include "machine/config.hh"
#include "vliw/code.hh"

namespace symbol::vliw
{

using bam::Word;

/** Simulation limits. */
struct SimOptions
{
    std::uint64_t maxCycles = 1ull << 34;
};

/** Result of a VLIW run. */
struct SimResult
{
    bool halted = false;
    /** Total machine cycles (wide issues + taken-branch penalties). */
    std::uint64_t cycles = 0;
    std::uint64_t wideExecuted = 0;
    std::uint64_t opsExecuted = 0;
    /** Reads of registers whose producing write had not yet
     *  committed — any nonzero value is a scheduler bug. */
    std::uint64_t latencyViolations = 0;
    /** Cycles in which at least one memory access issued. */
    std::uint64_t memBusyCycles = 0;
    /** Executed micro-ops whose unit id fell outside
     *  [0, numUnits) — any nonzero value means corrupt code (such
     *  ops are counted here instead of being silently dropped from
     *  unitOps). */
    std::uint64_t badUnitOps = 0;
    /** Executed-operation count per unit (resource utilisation). */
    std::vector<std::uint64_t> unitOps;
    std::vector<Word> output;
};

/** The VLIW machine. */
class Machine
{
  public:
    Machine(const Code &code, const machine::MachineConfig &config);

    /** Run from the entry until Halt. */
    SimResult run(const SimOptions &opts = {});

    /** Decoded observable output (see emul::decodeOutputStream). */
    std::string decodeOutput() const;

  private:
    const Code &code_;
    machine::MachineConfig config_;
    std::vector<Word> regs_;
    std::vector<Word> memory_;
    std::vector<Word> output_;
};

} // namespace symbol::vliw

#endif // SYMBOL_VLIW_SIM_HH
