/**
 * @file
 * Event-driven simulator for compacted VLIW code (§3.2, §4.5).
 *
 * Executes wide instructions with parallel-issue semantics: all
 * operand reads in a cycle see the pre-cycle machine state; register
 * results commit after their operation latency (there are no
 * interlocks — the schedule must respect latencies, and the
 * simulator counts violations); at most one branch takes effect per
 * cycle, the highest-priority (earliest-position) taken one, as in
 * the prototype's multi-way branch scheme (§5.1).
 *
 * Speculatively hoisted loads may compute wild addresses on paths
 * where they would not originally have executed; like the real
 * datapath (no MMU, untranslated 28-bit addresses), such loads return
 * a junk word instead of faulting. Stores are never speculated and
 * remain strictly bounds-checked.
 */

#ifndef SYMBOL_VLIW_SIM_HH
#define SYMBOL_VLIW_SIM_HH

#include "machine/config.hh"
#include "vliw/code.hh"

namespace symbol::vliw
{

using bam::Word;

/**
 * How a VLIW run ended. Mirrors emul::RunStatus where the semantics
 * overlap so a differential oracle can line the two machines up;
 * there is no DivByZero here because the exposed datapath never traps
 * on division (it yields 0), and no distinct step/cycle notion —
 * CycleLimit plays emul's StepLimit role.
 */
enum class SimStatus : std::uint8_t
{
    Ok,         ///< reached Halt
    MemFault,   ///< a (non-speculative) store outside [0, kMemWords)
    BadPc,      ///< control transfer outside the code
    CycleLimit, ///< cycle budget exhausted
};

/** Stable lower-case mnemonic of a SimStatus ("ok", "mem-fault"...). */
const char *simStatusName(SimStatus s);

/** Simulation limits. */
struct SimOptions
{
    std::uint64_t maxCycles = 1ull << 34;
    /** Report runtime faults as SimResult::status instead of throwing
     *  RuntimeError (same contract as emul::RunOptions::trapErrors):
     *  the partial result is returned, the faulting wide instruction
     *  is counted, its register/memory effects are not applied. */
    bool trapErrors = false;
};

/** Result of a VLIW run. */
struct SimResult
{
    bool halted = false;
    /** Why the run ended; trap values only appear when
     *  SimOptions::trapErrors is set (otherwise faults throw). */
    SimStatus status = SimStatus::Ok;
    /** Total machine cycles (wide issues + taken-branch penalties). */
    std::uint64_t cycles = 0;
    std::uint64_t wideExecuted = 0;
    std::uint64_t opsExecuted = 0;
    /** Reads of registers whose producing write had not yet
     *  committed — any nonzero value is a scheduler bug. */
    std::uint64_t latencyViolations = 0;
    /** Cycles in which at least one memory access issued. */
    std::uint64_t memBusyCycles = 0;
    /** Executed micro-ops whose unit id fell outside
     *  [0, numUnits) — any nonzero value means corrupt code (such
     *  ops are counted here instead of being silently dropped from
     *  unitOps). */
    std::uint64_t badUnitOps = 0;
    /** Executed-operation count per unit (resource utilisation). */
    std::vector<std::uint64_t> unitOps;
    std::vector<Word> output;
};

/** The VLIW machine. */
class Machine
{
  public:
    Machine(const Code &code, const machine::MachineConfig &config);

    /** Run from the entry until Halt. */
    SimResult run(const SimOptions &opts = {});

    /** Decoded observable output (see emul::decodeOutputStream). */
    std::string decodeOutput() const;

  private:
    const Code &code_;
    machine::MachineConfig config_;
    std::vector<Word> regs_;
    std::vector<Word> memory_;
    std::vector<Word> output_;
};

} // namespace symbol::vliw

#endif // SYMBOL_VLIW_SIM_HH
