#include "vliw/serialize.hh"

#include "intcode/serialize.hh"

namespace symbol::vliw
{

using serialize::Reader;
using serialize::Writer;

void
encode(Writer &w, const Code &code)
{
    w.vu(code.code.size());
    for (const WideInstr &wi : code.code) {
        w.vu(wi.ops.size());
        for (const MicroOp &op : wi.ops) {
            intcode::encodeInstr(w, op.instr);
            w.vi(op.unit);
            w.vi(op.orig);
            w.vi(op.seq);
        }
    }
    w.vi(code.entry);
    w.vi(code.numRegs);
    w.vu(code.regionStart.size());
    for (int s : code.regionStart)
        w.vi(s);
}

Code
decodeCode(Reader &r, const Interner *interner)
{
    Code code;
    std::size_t n = r.count(1);
    code.code.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        WideInstr wi;
        std::size_t ops = r.count(2);
        wi.ops.reserve(ops);
        for (std::size_t j = 0; j < ops; ++j) {
            MicroOp op;
            op.instr = intcode::decodeInstr(r);
            op.unit = static_cast<int>(r.vi());
            op.orig = static_cast<int>(r.vi());
            op.seq = static_cast<int>(r.vi());
            wi.ops.push_back(op);
        }
        code.code.push_back(std::move(wi));
    }
    code.entry = static_cast<int>(r.vi());
    code.numRegs = static_cast<int>(r.vi());
    std::size_t nr = r.count(1);
    code.regionStart.reserve(nr);
    for (std::size_t k = 0; k < nr; ++k)
        code.regionStart.push_back(static_cast<int>(r.vi()));
    code.interner = interner;
    return code;
}

} // namespace symbol::vliw
