/**
 * @file
 * Binary encode/decode of the emulation profile artefact: the
 * RunResult of the sequential profiling run, carrying the per-ICI
 * Expect vector, the per-branch taken vector (Probability is derived
 * from the two), the answer transcript and the cycle totals.
 */

#ifndef SYMBOL_EMUL_SERIALIZE_HH
#define SYMBOL_EMUL_SERIALIZE_HH

#include "emul/machine.hh"
#include "serialize/codec.hh"

namespace symbol::emul
{

void encode(serialize::Writer &w, const RunResult &run);

/** Throws serialize::DecodeError on malformed input. */
RunResult decodeRunResult(serialize::Reader &r);

} // namespace symbol::emul

#endif // SYMBOL_EMUL_SERIALIZE_HH
