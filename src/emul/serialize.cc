#include "emul/serialize.hh"

namespace symbol::emul
{

using serialize::Reader;
using serialize::Writer;

void
encode(Writer &w, const RunResult &run)
{
    w.b(run.halted);
    w.vu(run.instructions);
    w.vu(run.seqCycles);
    w.vecWord(run.output);
    w.vecU64(run.profile.expect);
    w.vecU64(run.profile.taken);
}

RunResult
decodeRunResult(Reader &r)
{
    RunResult run;
    run.halted = r.b();
    run.instructions = r.vu();
    run.seqCycles = r.vu();
    run.output = r.vecWord();
    run.profile.expect = r.vecU64();
    run.profile.taken = r.vecU64();
    return run;
}

} // namespace symbol::emul
