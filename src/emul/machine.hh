/**
 * @file
 * The IntCode sequential emulator (§3.1 of the paper).
 *
 * Executes an ICI program with full semantics, validating the code
 * produced by the front end, and extracts the statistical information
 * that drives global compaction: the *Expect* of every instruction
 * (how many times it executed) and the *Probability* of every branch
 * (how often it was taken).
 *
 * The emulator also charges cycles for the paper's pure sequential
 * reference machine: a single-issue pipelined RISC in which every
 * operation takes one cycle, memory and control are 2-cycle pipelined
 * (dependent uses interlock; taken branches cost one bubble).
 */

#ifndef SYMBOL_EMUL_MACHINE_HH
#define SYMBOL_EMUL_MACHINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "intcode/instr.hh"

namespace symbol::emul
{

using bam::Word;
using intcode::IInstr;
using intcode::Program;

/** Per-instruction execution statistics. */
struct Profile
{
    /** Expect: dynamic execution count per instruction. */
    std::vector<std::uint64_t> expect;
    /** Taken count per (conditional-branch) instruction. */
    std::vector<std::uint64_t> taken;

    /** Probability of instruction @p i being taken (branches). */
    double
    probability(std::size_t i) const
    {
        return expect[i] == 0
                   ? 0.0
                   : static_cast<double>(taken[i]) /
                         static_cast<double>(expect[i]);
    }
};

/**
 * How a run ended. Every abnormal ending is deterministic (a pure
 * function of the program), so a differential oracle can compare
 * trap outcomes across machine configurations, not just outputs.
 */
enum class RunStatus : std::uint8_t
{
    Ok,        ///< reached Halt
    MemFault,  ///< data access outside [0, kMemWords) — includes
               ///< heap/stack/trail growth past the end of memory
    DivByZero, ///< Div or Mod with a zero divisor
    BadPc,     ///< control transfer outside the code
    StepLimit, ///< step budget exhausted (still deterministic: the
               ///< budget counts instructions, not wall time)
};

/** Stable lower-case mnemonic of a RunStatus ("ok", "mem-fault"...). */
const char *runStatusName(RunStatus s);

/** Execution limits and switches. */
struct RunOptions
{
    std::uint64_t maxSteps = 4ull << 30;
    bool collectProfile = true;
    /** Load-to-use latency of the pipelined memory (§4.3: 2). */
    int memLatency = 2;
    /** Bubbles lost on a taken branch (§4.3 control pipeline: 1). */
    int takenPenalty = 1;
    /**
     * Report runtime faults as RunResult::status instead of throwing
     * RuntimeError. The partial result (instruction count, output
     * produced so far, profile) is returned; the faulting instruction
     * is counted but its effects are not applied. Off by default so
     * existing callers keep their throwing contract.
     */
    bool trapErrors = false;
};

/** Result of a completed run. */
struct RunResult
{
    bool halted = false;
    /** Why the run ended; only meaningful trap values appear when
     *  RunOptions::trapErrors is set (otherwise faults throw). Not
     *  persisted by the artefact store: profiling runs never trap. */
    RunStatus status = RunStatus::Ok;
    std::uint64_t instructions = 0;
    /** Cycles on the pure sequential pipelined reference machine. */
    std::uint64_t seqCycles = 0;
    std::vector<Word> output;
    Profile profile;
};

/** The emulator. State survives run() so tests can inspect it. */
class Machine
{
  public:
    explicit Machine(const Program &prog);

    /** Execute from the program entry until Halt. Throws
     *  RuntimeError on illegal accesses or exhausted step budget
     *  unless RunOptions::trapErrors asks for a status instead. */
    RunResult run(const RunOptions &opts = {});

    /** @name Post-run state inspection */
    /** @{ */
    Word reg(int r) const;
    Word mem(std::int64_t addr) const;
    const std::vector<Word> &output() const { return output_; }
    /** @} */

    /**
     * Decode the observable output stream (the address-free
     * linearisation produced by $out_term) back into readable term
     * text; multiple out/1 calls yield one line each, and the
     * <Int,-1> query-failure sentinel prints as "no".
     */
    std::string decodeOutput() const;

    /** Decode a tagged word against the current memory (follows heap
     *  pointers; @p depth bounds recursion). */
    std::string decodeTerm(Word w, int depth = 64) const;

  private:
    const Program &prog_;
    std::vector<Word> regs_;
    std::vector<Word> memory_;
    std::vector<Word> output_;

    Word operandB(const IInstr &i) const;
};

/**
 * Decode a linearised output stream (see $out_term) into readable
 * text, one term per line. Exposed separately so VLIW-run outputs can
 * be decoded with the same routine.
 */
std::string decodeOutputStream(const std::vector<Word> &stream,
                               const Interner *interner);

} // namespace symbol::emul

#endif // SYMBOL_EMUL_MACHINE_HH
