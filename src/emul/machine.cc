#include "emul/machine.hh"

#include <algorithm>

#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::emul
{

using bam::Tag;
using intcode::IOp;
using L = bam::Layout;

Machine::Machine(const Program &prog)
    : prog_(prog), regs_(static_cast<std::size_t>(prog.numRegs), 0),
      memory_(static_cast<std::size_t>(L::kMemWords), 0)
{
}

Word
Machine::reg(int r) const
{
    panicIf(r < 0 || static_cast<std::size_t>(r) >= regs_.size(),
            "register index out of range");
    return regs_[static_cast<std::size_t>(r)];
}

Word
Machine::mem(std::int64_t addr) const
{
    panicIf(addr < 0 || addr >= L::kMemWords,
            "memory address out of range");
    return memory_[static_cast<std::size_t>(addr)];
}

Word
Machine::operandB(const IInstr &i) const
{
    return i.useImm ? i.imm : regs_[static_cast<std::size_t>(i.rb)];
}

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::MemFault: return "mem-fault";
      case RunStatus::DivByZero: return "div-by-zero";
      case RunStatus::BadPc: return "bad-pc";
      case RunStatus::StepLimit: return "step-limit";
    }
    return "?";
}

RunResult
Machine::run(const RunOptions &opts)
{
    RunResult res;
    const std::size_t n = prog_.code.size();
    if (opts.collectProfile) {
        res.profile.expect.assign(n, 0);
        res.profile.taken.assign(n, 0);
    }

    // Sequential-machine timing: per-register ready times implement
    // the load/branch interlocks of a pipelined single-issue RISC.
    std::vector<std::uint64_t> ready(regs_.size(), 0);
    std::uint64_t now = 0;

    std::int64_t pc = prog_.entry;
    std::uint64_t steps = 0;

    // Fault raised by the current instruction; with trapErrors set it
    // ends the run via res.status, otherwise the check site throws.
    RunStatus fault = RunStatus::Ok;
    auto memAddr = [&](const IInstr &i, std::int64_t &out) {
        std::int64_t addr =
            bam::wordVal(regs_[static_cast<std::size_t>(i.ra)]) + i.off;
        if (addr < 0 || addr >= L::kMemWords) {
            if (!opts.trapErrors)
                throw RuntimeError(strprintf(
                    "memory access out of range: %lld",
                    static_cast<long long>(addr)));
            fault = RunStatus::MemFault;
            return false;
        }
        out = addr;
        return true;
    };

    auto rdy = [&](int r) {
        if (r >= 0)
            now = std::max(now, ready[static_cast<std::size_t>(r)]);
    };
    auto setReady = [&](int r, std::uint64_t t) {
        if (r >= 0)
            ready[static_cast<std::size_t>(r)] = t;
    };

    while (true) {
        if (pc < 0 || static_cast<std::size_t>(pc) >= n) {
            if (!opts.trapErrors)
                throw RuntimeError(strprintf(
                    "PC out of range: %lld",
                    static_cast<long long>(pc)));
            res.status = RunStatus::BadPc;
            break;
        }
        if (++steps > opts.maxSteps) {
            if (!opts.trapErrors)
                throw RuntimeError("step budget exhausted");
            --steps;
            res.status = RunStatus::StepLimit;
            break;
        }
        const IInstr &i = prog_.code[static_cast<std::size_t>(pc)];
        if (opts.collectProfile)
            ++res.profile.expect[static_cast<std::size_t>(pc)];

        // Issue time: one instruction per cycle, stalling until all
        // source operands are available.
        ++now;
        rdy(i.ra);
        if (!i.useImm)
            rdy(i.rb);

        std::int64_t next = pc + 1;
        bool taken = false;
        switch (i.op) {
          case IOp::Ld: {
            std::int64_t addr = 0;
            if (!memAddr(i, addr))
                break;
            regs_[static_cast<std::size_t>(i.rd)] =
                memory_[static_cast<std::size_t>(addr)];
            setReady(i.rd, now + static_cast<std::uint64_t>(
                                     opts.memLatency));
            break;
          }
          case IOp::St: {
            std::int64_t addr = 0;
            if (!memAddr(i, addr))
                break;
            memory_[static_cast<std::size_t>(addr)] = operandB(i);
            break;
          }
          case IOp::Add: case IOp::Sub: case IOp::Mul: case IOp::Div:
          case IOp::Mod: case IOp::And: case IOp::Or: case IOp::Xor:
          case IOp::Sll: case IOp::Sra: {
            std::int64_t a =
                bam::wordVal(regs_[static_cast<std::size_t>(i.ra)]);
            std::int64_t b = bam::wordVal(operandB(i));
            std::int64_t v = 0;
            switch (i.op) {
              case IOp::Add: v = a + b; break;
              case IOp::Sub: v = a - b; break;
              case IOp::Mul: v = a * b; break;
              case IOp::Div:
                if (b == 0) {
                    if (!opts.trapErrors)
                        throw RuntimeError("division by zero");
                    fault = RunStatus::DivByZero;
                    break;
                }
                v = a / b;
                break;
              case IOp::Mod:
                if (b == 0) {
                    if (!opts.trapErrors)
                        throw RuntimeError("modulo by zero");
                    fault = RunStatus::DivByZero;
                    break;
                }
                v = a % b;
                break;
              case IOp::And: v = a & b; break;
              case IOp::Or: v = a | b; break;
              case IOp::Xor: v = a ^ b; break;
              case IOp::Sll: v = a << (b & 31); break;
              case IOp::Sra: v = a >> (b & 31); break;
              default: break;
            }
            if (fault != RunStatus::Ok)
                break;
            regs_[static_cast<std::size_t>(i.rd)] =
                bam::makeWord(Tag::Int, v);
            setReady(i.rd, now + 1);
            break;
          }
          case IOp::Mov:
            regs_[static_cast<std::size_t>(i.rd)] =
                regs_[static_cast<std::size_t>(i.ra)];
            setReady(i.rd, now + 1);
            break;
          case IOp::Movi:
            regs_[static_cast<std::size_t>(i.rd)] = i.imm;
            setReady(i.rd, now + 1);
            break;
          case IOp::MkTag:
            regs_[static_cast<std::size_t>(i.rd)] = bam::makeWord(
                i.tag,
                bam::wordVal(regs_[static_cast<std::size_t>(i.ra)]));
            setReady(i.rd, now + 1);
            break;
          case IOp::GetTag:
            regs_[static_cast<std::size_t>(i.rd)] = bam::makeWord(
                Tag::Int,
                static_cast<std::int64_t>(bam::wordTag(
                    regs_[static_cast<std::size_t>(i.ra)])));
            setReady(i.rd, now + 1);
            break;
          case IOp::Beq:
            taken = regs_[static_cast<std::size_t>(i.ra)] ==
                    operandB(i);
            break;
          case IOp::Bne:
            taken = regs_[static_cast<std::size_t>(i.ra)] !=
                    operandB(i);
            break;
          case IOp::Blt: case IOp::Ble: case IOp::Bgt:
          case IOp::Bge: {
            std::int64_t a =
                bam::wordVal(regs_[static_cast<std::size_t>(i.ra)]);
            std::int64_t b = bam::wordVal(operandB(i));
            switch (i.op) {
              case IOp::Blt: taken = a < b; break;
              case IOp::Ble: taken = a <= b; break;
              case IOp::Bgt: taken = a > b; break;
              case IOp::Bge: taken = a >= b; break;
              default: break;
            }
            break;
          }
          case IOp::BtagEq:
            taken = bam::wordTag(
                        regs_[static_cast<std::size_t>(i.ra)]) ==
                    i.tag;
            break;
          case IOp::BtagNe:
            taken = bam::wordTag(
                        regs_[static_cast<std::size_t>(i.ra)]) !=
                    i.tag;
            break;
          case IOp::Jmp:
            next = i.target;
            now += static_cast<std::uint64_t>(opts.takenPenalty);
            break;
          case IOp::Jmpi: {
            Word w = regs_[static_cast<std::size_t>(i.ra)];
            next = bam::wordVal(w);
            now += static_cast<std::uint64_t>(opts.takenPenalty);
            break;
          }
          case IOp::Out:
            output_.push_back(operandB(i));
            break;
          case IOp::Halt:
            res.halted = true;
            break;
          case IOp::Nop:
            break;
        }

        if (fault != RunStatus::Ok) {
            res.status = fault;
            break;
        }

        if (intcode::isCondBranch(i.op) && taken) {
            if (opts.collectProfile)
                ++res.profile.taken[static_cast<std::size_t>(pc)];
            next = i.target;
            now += static_cast<std::uint64_t>(opts.takenPenalty);
        }

        if (res.halted)
            break;
        pc = next;
    }

    res.instructions = steps;
    res.seqCycles = now;
    res.output = output_;
    return res;
}

// --- Output decoding ----------------------------------------------------

namespace
{

/** Recursive-descent reader over the linearised stream. */
struct StreamReader
{
    const std::vector<Word> &s;
    const Interner *in;
    std::size_t pos = 0;

    bool atEnd() const { return pos >= s.size(); }

    std::string
    atomName(std::int64_t v) const
    {
        if (in && in->valid(static_cast<AtomId>(v)))
            return in->name(static_cast<AtomId>(v));
        return strprintf("atm_%lld", static_cast<long long>(v));
    }

    std::string
    term()
    {
        if (atEnd())
            return "<truncated>";
        Word w = s[pos++];
        std::int64_t v = bam::wordVal(w);
        switch (bam::wordTag(w)) {
          case Tag::Int:
            return strprintf("%lld", static_cast<long long>(v));
          case Tag::Atm:
            return atomName(v);
          case Tag::Ref:
            return "_";
          case Tag::Lst: {
            std::string out = "[" + term();
            // Chase the cdr: further list cells extend the bracket
            // notation, [] closes it, anything else is an improper
            // tail.
            while (true) {
                if (atEnd())
                    return out + "|<truncated>";
                Word t = s[pos];
                if (bam::wordTag(t) == Tag::Lst) {
                    ++pos;
                    out += "," + term();
                    continue;
                }
                if (bam::wordTag(t) == Tag::Atm &&
                    in && bam::wordVal(t) == in->nilAtom()) {
                    ++pos;
                    return out + "]";
                }
                return out + "|" + term() + "]";
            }
          }
          case Tag::Fun: {
            int arity = bam::functorArity(v);
            std::string out = atomName(bam::functorAtom(v)) + "(";
            for (int i = 0; i < arity; ++i) {
                if (i)
                    out += ",";
                out += term();
            }
            return out + ")";
          }
          default:
            return strprintf("<%s:%lld>", bam::tagName(bam::wordTag(w)),
                             static_cast<long long>(v));
        }
    }
};

} // namespace

std::string
decodeOutputStream(const std::vector<Word> &stream,
                   const Interner *interner)
{
    StreamReader r{stream, interner};
    std::string out;
    while (!r.atEnd()) {
        Word w = stream[r.pos];
        if (bam::wordTag(w) == Tag::Fun && bam::wordVal(w) == -1) {
            ++r.pos;
            out += "no\n";
            continue;
        }
        out += r.term();
        out += '\n';
    }
    return out;
}

std::string
Machine::decodeOutput() const
{
    return decodeOutputStream(output_, prog_.interner);
}

std::string
Machine::decodeTerm(Word w, int depth) const
{
    if (depth <= 0)
        return "...";
    std::int64_t v = bam::wordVal(w);
    switch (bam::wordTag(w)) {
      case Tag::Int:
        return strprintf("%lld", static_cast<long long>(v));
      case Tag::Atm:
        if (prog_.interner &&
            prog_.interner->valid(static_cast<AtomId>(v)))
            return prog_.interner->name(static_cast<AtomId>(v));
        return strprintf("atm_%lld", static_cast<long long>(v));
      case Tag::Ref: {
        Word cell = mem(v);
        if (cell == w)
            return strprintf("_G%lld", static_cast<long long>(v));
        return decodeTerm(cell, depth - 1);
      }
      case Tag::Lst: {
        std::string out = "[" + decodeTerm(mem(v), depth - 1);
        Word tail = mem(v + 1);
        for (int guard = 0; guard < 1 << 20; ++guard) {
            // Deref the tail.
            while (bam::wordTag(tail) == Tag::Ref &&
                   mem(bam::wordVal(tail)) != tail)
                tail = mem(bam::wordVal(tail));
            if (bam::wordTag(tail) == Tag::Lst) {
                std::int64_t a = bam::wordVal(tail);
                out += "," + decodeTerm(mem(a), depth - 1);
                tail = mem(a + 1);
                continue;
            }
            if (prog_.interner && bam::wordTag(tail) == Tag::Atm &&
                bam::wordVal(tail) == prog_.interner->nilAtom())
                return out + "]";
            return out + "|" + decodeTerm(tail, depth - 1) + "]";
        }
        return out + "|...]";
      }
      case Tag::Str: {
        Word f = mem(v);
        int arity = bam::functorArity(bam::wordVal(f));
        AtomId name = bam::functorAtom(bam::wordVal(f));
        std::string out =
            prog_.interner && prog_.interner->valid(name)
                ? prog_.interner->name(name)
                : strprintf("f%d", name);
        out += "(";
        for (int i = 0; i < arity; ++i) {
            if (i)
                out += ",";
            out += decodeTerm(mem(v + 1 + i), depth - 1);
        }
        return out + ")";
      }
      default:
        return strprintf("<%s:%lld>", bam::tagName(bam::wordTag(w)),
                         static_cast<long long>(v));
    }
}

} // namespace symbol::emul
