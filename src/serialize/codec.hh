/**
 * @file
 * Reusable byte codec for the persistent artefact store.
 *
 * Writer appends primitive values to a growable byte buffer; Reader
 * decodes them back with strict bounds checking. Integers use LEB128
 * varints (zigzag for signed values) so the common small counts and
 * register numbers cost one byte; doubles are stored as their exact
 * IEEE-754 bit pattern so reload is bit-identical; header fields use
 * fixed-width little-endian so offsets are predictable.
 *
 * Robustness contract: a Reader NEVER exhibits undefined behaviour on
 * arbitrary input bytes. Every primitive read is bounds-checked and
 * every collection count is validated against the remaining payload
 * (each element costs at least one byte), so a hostile or corrupted
 * buffer can only produce a DecodeError — never an overread, an
 * overflow, or a multi-gigabyte allocation.
 */

#ifndef SYMBOL_SERIALIZE_CODEC_HH
#define SYMBOL_SERIALIZE_CODEC_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/fnv.hh"

namespace symbol::serialize
{

/** Thrown by Reader on any malformed input. The artefact store
 *  converts it (and any other failure) into a cache miss. */
class DecodeError : public std::runtime_error
{
  public:
    explicit DecodeError(const std::string &what)
        : std::runtime_error("decode: " + what)
    {
    }
};

/** The serializer's checksum function is the shared support helper
 *  (one FNV-1a implementation for the whole toolchain). */
using support::fnv1a;

/** Append-only encoder. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void fixed32(std::uint32_t v); ///< little-endian, 4 bytes
    void fixed64(std::uint64_t v); ///< little-endian, 8 bytes
    void vu(std::uint64_t v);      ///< LEB128 varint
    void vi(std::int64_t v);       ///< zigzag varint
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v); ///< IEEE-754 bit pattern, fixed64
    void str(const std::string &s);

    /** Varint vector (counts, register indices as zigzag below). */
    void vecU64(const std::vector<std::uint64_t> &v);
    /** Fixed64 vector (tagged machine words). */
    void vecWord(const std::vector<std::uint64_t> &v);
    void vecI32(const std::vector<int> &v);
    void vecBool(const std::vector<bool> &v);
    void vecU8(const std::vector<std::uint8_t> &v);

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked decoder over a borrowed byte range. */
class Reader
{
  public:
    Reader(const char *data, std::size_t n) : p_(data), end_(data + n)
    {
    }
    explicit Reader(const std::string &bytes)
        : Reader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t fixed32();
    std::uint64_t fixed64();
    std::uint64_t vu();
    std::int64_t vi();
    bool b();
    double f64();
    std::string str();

    std::vector<std::uint64_t> vecU64();
    std::vector<std::uint64_t> vecWord();
    std::vector<int> vecI32();
    std::vector<bool> vecBool();
    std::vector<std::uint8_t> vecU8();

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }
    bool atEnd() const { return p_ == end_; }
    /** Throw unless the payload was consumed exactly. */
    void expectEnd() const;

    /**
     * Validate a collection count read from the wire: each element
     * occupies at least @p minElemBytes, so a count larger than the
     * remaining payload proves corruption before any allocation.
     */
    std::size_t count(std::size_t minElemBytes = 1);

  private:
    const char *need(std::size_t n);
    const char *p_;
    const char *end_;
};

} // namespace symbol::serialize

#endif // SYMBOL_SERIALIZE_CODEC_HH
