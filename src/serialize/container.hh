/**
 * @file
 * The on-disk container of the persistent artefact store.
 *
 * Layout (all header fields little-endian fixed-width):
 *
 *   offset 0   magic "SYAF" (SYmbol Artefact File)
 *          4   u32 format version (kFormatVersion)
 *          8   u32 section count
 *         12   u64 FNV-1a checksum of the section table
 *         20   section table: per section
 *                u32 id | u64 payload size | u64 FNV-1a of payload
 *         ...  payloads, concatenated in table order
 *
 * Version policy: kFormatVersion covers EVERY artefact encoding in
 * the toolchain — any change to any encoder bumps it, and any
 * mismatch (older or newer) makes the whole file a cache miss. There
 * is deliberately no migration path: artefacts are pure caches and
 * rebuilding them is always correct.
 *
 * Robustness: unpack/check validate magic, version, table checksum,
 * section bounds against the real file size, and every payload
 * checksum — a truncated, bit-flipped or version-bumped file is
 * reported as such and never reaches the artefact decoders.
 */

#ifndef SYMBOL_SERIALIZE_CONTAINER_HH
#define SYMBOL_SERIALIZE_CONTAINER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serialize/codec.hh"

namespace symbol::serialize
{

/** Bump on ANY change to ANY artefact encoding (see header). */
constexpr std::uint32_t kFormatVersion = 2;

/** The 4 magic bytes opening every store file. */
extern const char kMagic[4];

/** One section to be packed. */
struct Section
{
    std::uint32_t id = 0;
    std::string payload;
};

/** Serialize @p sections into one self-checking container. */
std::string packContainer(const std::vector<Section> &sections,
                          std::uint32_t version = kFormatVersion);

/** A parsed container: section id -> payload bytes. */
struct Container
{
    std::uint32_t version = 0;
    std::map<std::uint32_t, std::string> sections;

    /** The payload of @p id (throws DecodeError if absent). */
    const std::string &section(std::uint32_t id) const;
};

/**
 * Parse and fully validate @p bytes. Throws DecodeError on any
 * corruption or if the version differs from @p expectVersion
 * (pass 0 to accept any version — used by the verifier).
 */
Container unpackContainer(const std::string &bytes,
                          std::uint32_t expectVersion = kFormatVersion);

/** Non-throwing validation verdict for `symbolc --cache-verify`. */
struct ContainerCheck
{
    bool ok = false;
    std::uint32_t version = 0;
    std::size_t sections = 0;
    std::size_t bytes = 0;
    /** Human-readable reason when !ok. */
    std::string problem;
};

/** Validate @p bytes without decoding any artefact. */
ContainerCheck checkContainer(
    const std::string &bytes,
    std::uint32_t expectVersion = kFormatVersion);

} // namespace symbol::serialize

#endif // SYMBOL_SERIALIZE_CONTAINER_HH
