/**
 * @file
 * Interned-symbol-table serialization.
 *
 * The Interner maps atoms to dense ids in first-intern order, so the
 * table round-trips as the ordered list of names: re-interning them
 * in sequence reproduces every id exactly, which keeps all Atm/Fun
 * words in serialized artefacts valid against the reloaded table.
 */

#ifndef SYMBOL_SERIALIZE_INTERNER_HH
#define SYMBOL_SERIALIZE_INTERNER_HH

#include "serialize/codec.hh"
#include "support/interner.hh"

namespace symbol::serialize
{

void encode(Writer &w, const Interner &interner);

/** Rebuild an Interner with identical ids. Throws DecodeError if the
 *  stream is malformed or the names are not a valid dense table. */
Interner decodeInterner(Reader &r);

} // namespace symbol::serialize

#endif // SYMBOL_SERIALIZE_INTERNER_HH
