#include "serialize/container.hh"

#include <cstring>

namespace symbol::serialize
{

const char kMagic[4] = {'S', 'Y', 'A', 'F'};

namespace
{

constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;
constexpr std::size_t kTableEntryBytes = 4 + 8 + 8;

} // namespace

std::string
packContainer(const std::vector<Section> &sections,
              std::uint32_t version)
{
    Writer table;
    for (const Section &s : sections) {
        table.fixed32(s.id);
        table.fixed64(s.payload.size());
        table.fixed64(fnv1a(s.payload.data(), s.payload.size()));
    }

    std::string head;
    head.append(kMagic, sizeof kMagic);
    Writer h;
    h.fixed32(version);
    h.fixed32(static_cast<std::uint32_t>(sections.size()));
    h.fixed64(fnv1a(table.bytes().data(), table.bytes().size()));
    head += h.bytes();
    head += table.bytes();
    for (const Section &s : sections)
        head += s.payload;
    return head;
}

namespace
{

/** Shared parse used by both unpack and check. Throws DecodeError. */
Container
parse(const std::string &bytes, std::uint32_t expectVersion)
{
    if (bytes.size() < kHeaderBytes)
        throw DecodeError("file shorter than header");
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        throw DecodeError("bad magic");

    Reader r(bytes.data() + sizeof kMagic,
             bytes.size() - sizeof kMagic);
    Container c;
    c.version = r.fixed32();
    if (expectVersion != 0 && c.version != expectVersion)
        throw DecodeError(
            "format version mismatch (file v" +
            std::to_string(c.version) + ", expected v" +
            std::to_string(expectVersion) + ")");
    std::uint32_t count = r.fixed32();
    std::uint64_t tableSum = r.fixed64();
    if (static_cast<std::uint64_t>(count) * kTableEntryBytes >
        r.remaining())
        throw DecodeError("section table exceeds file size");

    std::size_t tableBytes = count * kTableEntryBytes;
    std::size_t tableOff = kHeaderBytes;
    if (fnv1a(bytes.data() + tableOff, tableBytes) != tableSum)
        throw DecodeError("section table checksum mismatch");

    struct Row
    {
        std::uint32_t id;
        std::uint64_t size;
        std::uint64_t sum;
    };
    std::vector<Row> rows(count);
    for (Row &row : rows) {
        row.id = r.fixed32();
        row.size = r.fixed64();
        row.sum = r.fixed64();
    }

    std::size_t off = tableOff + tableBytes;
    for (const Row &row : rows) {
        if (row.size > bytes.size() - off)
            throw DecodeError("section payload exceeds file size");
        if (fnv1a(bytes.data() + off, row.size) != row.sum)
            throw DecodeError("payload checksum mismatch (section " +
                              std::to_string(row.id) + ")");
        if (!c.sections
                 .emplace(row.id, bytes.substr(off, row.size))
                 .second)
            throw DecodeError("duplicate section id " +
                              std::to_string(row.id));
        off += row.size;
    }
    if (off != bytes.size())
        throw DecodeError("trailing bytes after last section");
    return c;
}

} // namespace

const std::string &
Container::section(std::uint32_t id) const
{
    auto it = sections.find(id);
    if (it == sections.end())
        throw DecodeError("missing section " + std::to_string(id));
    return it->second;
}

Container
unpackContainer(const std::string &bytes, std::uint32_t expectVersion)
{
    return parse(bytes, expectVersion);
}

ContainerCheck
checkContainer(const std::string &bytes, std::uint32_t expectVersion)
{
    ContainerCheck res;
    res.bytes = bytes.size();
    try {
        Container c = parse(bytes, expectVersion);
        res.ok = true;
        res.version = c.version;
        res.sections = c.sections.size();
    } catch (const DecodeError &e) {
        res.problem = e.what();
        // Best effort: report the version even of a rejected file.
        if (bytes.size() >= 8 &&
            std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0) {
            std::uint32_t v = 0;
            for (int i = 0; i < 4; ++i)
                v |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(bytes[4 + i]))
                     << (8 * i);
            res.version = v;
        }
    }
    return res;
}

} // namespace symbol::serialize
