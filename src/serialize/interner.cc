#include "serialize/interner.hh"

namespace symbol::serialize
{

void
encode(Writer &w, const Interner &interner)
{
    w.vu(interner.size());
    for (std::size_t id = 0; id < interner.size(); ++id)
        w.str(interner.name(static_cast<AtomId>(id)));
}

Interner
decodeInterner(Reader &r)
{
    std::size_t n = r.count(1);
    Interner interner;
    // The constructor pre-interns its service atoms; a valid encoded
    // table starts with exactly those names, so re-interning the
    // whole list in order must land every name on its own index.
    if (n < interner.size())
        throw DecodeError("interner table misses service atoms");
    for (std::size_t id = 0; id < n; ++id) {
        std::string name = r.str();
        if (interner.intern(name) != static_cast<AtomId>(id))
            throw DecodeError("interner table is not dense");
    }
    return interner;
}

} // namespace symbol::serialize
