#include "serialize/codec.hh"

#include <cstring>

namespace symbol::serialize
{

void
Writer::fixed32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Writer::fixed64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Writer::vu(std::uint64_t v)
{
    while (v >= 0x80) {
        u8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
}

void
Writer::vi(std::int64_t v)
{
    // Zigzag: small magnitudes of either sign stay one byte.
    vu((static_cast<std::uint64_t>(v) << 1) ^
       static_cast<std::uint64_t>(v >> 63));
}

void
Writer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    fixed64(bits);
}

void
Writer::str(const std::string &s)
{
    vu(s.size());
    buf_.append(s);
}

void
Writer::vecU64(const std::vector<std::uint64_t> &v)
{
    vu(v.size());
    for (std::uint64_t x : v)
        vu(x);
}

void
Writer::vecWord(const std::vector<std::uint64_t> &v)
{
    vu(v.size());
    for (std::uint64_t x : v)
        fixed64(x);
}

void
Writer::vecI32(const std::vector<int> &v)
{
    vu(v.size());
    for (int x : v)
        vi(x);
}

void
Writer::vecBool(const std::vector<bool> &v)
{
    vu(v.size());
    for (bool x : v)
        b(x);
}

void
Writer::vecU8(const std::vector<std::uint8_t> &v)
{
    vu(v.size());
    for (std::uint8_t x : v)
        u8(x);
}

const char *
Reader::need(std::size_t n)
{
    if (static_cast<std::size_t>(end_ - p_) < n)
        throw DecodeError("unexpected end of payload");
    const char *at = p_;
    p_ += n;
    return at;
}

std::uint8_t
Reader::u8()
{
    return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t
Reader::fixed32()
{
    const char *p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
Reader::fixed64()
{
    const char *p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
Reader::vu()
{
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        std::uint8_t byte = u8();
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            // Reject non-canonical high bits past bit 63.
            if (shift == 63 && (byte & 0x7e))
                throw DecodeError("varint overflows 64 bits");
            return v;
        }
    }
    throw DecodeError("varint longer than 10 bytes");
}

std::int64_t
Reader::vi()
{
    std::uint64_t z = vu();
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

bool
Reader::b()
{
    std::uint8_t v = u8();
    if (v > 1)
        throw DecodeError("boolean out of range");
    return v != 0;
}

double
Reader::f64()
{
    std::uint64_t bits = fixed64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
Reader::str()
{
    std::size_t n = count(1);
    const char *p = need(n);
    return std::string(p, n);
}

std::size_t
Reader::count(std::size_t minElemBytes)
{
    std::uint64_t n = vu();
    if (minElemBytes == 0)
        minElemBytes = 1;
    // Floor division keeps the comparison exact and overflow-free
    // even for counts near 2^64.
    if (n > remaining() / minElemBytes)
        throw DecodeError("collection count exceeds payload");
    return static_cast<std::size_t>(n);
}

std::vector<std::uint64_t>
Reader::vecU64()
{
    std::size_t n = count(1);
    std::vector<std::uint64_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = vu();
    return v;
}

std::vector<std::uint64_t>
Reader::vecWord()
{
    std::size_t n = count(8);
    std::vector<std::uint64_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = fixed64();
    return v;
}

std::vector<int>
Reader::vecI32()
{
    std::size_t n = count(1);
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::int64_t x = vi();
        if (x < INT32_MIN || x > INT32_MAX)
            throw DecodeError("int32 out of range");
        v[i] = static_cast<int>(x);
    }
    return v;
}

std::vector<bool>
Reader::vecBool()
{
    std::size_t n = count(1);
    std::vector<bool> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = b();
    return v;
}

std::vector<std::uint8_t>
Reader::vecU8()
{
    std::size_t n = count(1);
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = u8();
    return v;
}

void
Reader::expectEnd() const
{
    if (p_ != end_)
        throw DecodeError("trailing bytes after payload");
}

} // namespace symbol::serialize
